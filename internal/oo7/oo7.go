// Package oo7 implements the OO7 object-oriented database benchmark
// [Carey93] as used by the paper (§4.1–§4.2): the database generator with
// the paper's small and big parameterizations (Table 1), and the T2A, T2B
// and T2C update traversals.
//
// Object layouts are flat binary records connected by OIDs. Each composite
// part's atomic-part graph (20 parts, 60 connection objects) is clustered
// onto its own page(s), which is what gives the paper its page-level write
// counts: a sparse T2A update dirties roughly one page per composite part.
package oo7

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/client"
	"repro/internal/page"
)

// Config holds the OO7 generation parameters (Table 1).
type Config struct {
	NumAtomicPerComp int
	NumConnPerAtomic int
	DocumentSize     int
	ManualSize       int
	NumCompPerModule int
	NumAssmPerAssm   int
	NumAssmLevels    int
	NumCompPerAssm   int
	NumModules       int
}

// SmallConfig returns the paper's small database parameters.
func SmallConfig() Config {
	return Config{
		NumAtomicPerComp: 20,
		NumConnPerAtomic: 3,
		DocumentSize:     2000,
		ManualSize:       100 << 10,
		NumCompPerModule: 500,
		NumAssmPerAssm:   3,
		NumAssmLevels:    7,
		NumCompPerAssm:   3,
		NumModules:       5,
	}
}

// BigConfig returns the paper's big database parameters: 2000 composite
// parts per module and 8 assembly levels.
func BigConfig() Config {
	c := SmallConfig()
	c.NumCompPerModule = 2000
	c.NumAssmLevels = 8
	return c
}

// Scale returns a copy of the configuration shrunk by factor f (≥1) in the
// number of composite parts, for fast tests and short benchmarks. The graph
// shape is preserved.
func (c Config) Scale(f int) Config {
	if f <= 1 {
		return c
	}
	c.NumCompPerModule = max(3, c.NumCompPerModule/f)
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BaseAssemblies returns the number of base assemblies per module.
func (c Config) BaseAssemblies() int {
	n := 1
	for i := 1; i < c.NumAssmLevels; i++ {
		n *= c.NumAssmPerAssm
	}
	return n
}

// Object sizes in bytes. The padding brings the per-composite-part cluster
// to ≈6.9 KB so one cluster fills most of an 8 KB page, reproducing the
// paper's ~1 dirtied page per composite part under sparse updates.
const (
	AtomicPartSize = 100
	ConnectionSize = 80
	CompPartSize   = 100
	AssemblySize   = 80
	ModuleSize     = 64
	ManualChunk    = 7500
)

// Atomic part field offsets. X and Y are adjacent so the paper's
// "increment the (x,y) attributes" is a single 8-byte update region.
const (
	apID        = 0
	apX         = 4
	apY         = 8
	apBuildDate = 12
	apConns     = 16 // NumConnPerAtomic OIDs
)

// Composite part field offsets.
const (
	cpID       = 0
	cpDate     = 4
	cpRootPart = 8
	cpDocument = 16
)

// Assembly field offsets. Level 1 is a base assembly whose children are
// composite parts; higher levels are complex assemblies whose children are
// assemblies.
const (
	asID       = 0
	asLevel    = 4
	asChildren = 8
)

// Module object field offsets.
const (
	moID     = 0
	moRoot   = 8
	moManual = 16
)

// Connection field offsets.
const (
	cnType = 0
	cnFrom = 8
	cnTo   = 16
)

// Database is the in-memory handle to a generated OO7 database.
type Database struct {
	Config  Config
	Catalog page.OID
	Modules []Module
}

// Module is the handle to one module (one client's private data).
type Module struct {
	Self      page.OID
	Root      page.OID // root assembly
	Manual    page.OID
	CompParts []page.OID
}

// rd32/wr32 helpers for object fields.
func rd32(b []byte, off int) uint32    { return binary.LittleEndian.Uint32(b[off:]) }
func wr32(b []byte, off int, v uint32) { binary.LittleEndian.PutUint32(b[off:], v) }

func rdOID(b []byte, off int) page.OID    { return page.DecodeOID(b[off:]) }
func wrOID(b []byte, off int, o page.OID) { page.EncodeOID(b[off:], o) }

// Build generates the database through c, committing in batches. The layout
// work (which pages objects land on) is deterministic for a given seed.
func Build(c *client.Client, cfg Config, seed int64) (*Database, error) {
	rng := rand.New(rand.NewSource(seed))
	db := &Database{Config: cfg}
	tx, err := c.Begin()
	if err != nil {
		return nil, err
	}
	// Catalog goes first so tools can find it at a well-known OID.
	catalog, err := tx.Allocate(8 + 8*cfg.NumModules)
	if err != nil {
		return nil, err
	}
	db.Catalog = catalog
	for m := 0; m < cfg.NumModules; m++ {
		mod, err := buildModule(c, &tx, cfg, m, rng)
		if err != nil {
			return nil, err
		}
		db.Modules = append(db.Modules, *mod)
	}
	// Fill in the catalog.
	cat := make([]byte, 8+8*cfg.NumModules)
	wr32(cat, 0, uint32(cfg.NumModules))
	for i, m := range db.Modules {
		wrOID(cat, 8+8*i, m.Self)
	}
	if err := tx.Write(catalog, 0, cat); err != nil {
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return db, nil
}

// buildModule creates one module, committing periodically to bound
// transaction size. tx is replaced by the transaction left open at return.
func buildModule(c *client.Client, tx **client.Tx, cfg Config, idx int, rng *rand.Rand) (*Module, error) {
	mod := &Module{}
	// Composite parts, one clustered page run per part.
	for cp := 0; cp < cfg.NumCompPerModule; cp++ {
		oid, err := buildCompositePart(*tx, cfg, idx*cfg.NumCompPerModule+cp, rng)
		if err != nil {
			return nil, err
		}
		mod.CompParts = append(mod.CompParts, oid)
		if (cp+1)%64 == 0 {
			if err := (*tx).Commit(); err != nil {
				return nil, err
			}
			nt, err := c.Begin()
			if err != nil {
				return nil, err
			}
			*tx = nt
		}
	}
	// Documents, densely packed on their own pages.
	if _, err := (*tx).NewPage(); err != nil {
		return nil, err
	}
	for cp := 0; cp < cfg.NumCompPerModule; cp++ {
		doc, err := (*tx).Allocate(cfg.DocumentSize)
		if err != nil {
			return nil, err
		}
		head := []byte(fmt.Sprintf("Composite part %d document", cp))
		if err := (*tx).Write(doc, 0, head); err != nil {
			return nil, err
		}
		if err := (*tx).Write(mod.CompParts[cp], cpDocument, encodeOID(doc)); err != nil {
			return nil, err
		}
		if (cp+1)%256 == 0 {
			if err := (*tx).Commit(); err != nil {
				return nil, err
			}
			nt, err := c.Begin()
			if err != nil {
				return nil, err
			}
			*tx = nt
		}
	}
	// Assembly hierarchy.
	if _, err := (*tx).NewPage(); err != nil {
		return nil, err
	}
	root, err := buildAssembly(*tx, cfg, mod, cfg.NumAssmLevels, rng)
	if err != nil {
		return nil, err
	}
	mod.Root = root
	// Manual, as a chain of chunks.
	man, err := buildManual(*tx, cfg)
	if err != nil {
		return nil, err
	}
	mod.Manual = man
	// Module object.
	self, err := (*tx).Allocate(ModuleSize)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, ModuleSize)
	wr32(buf, moID, uint32(idx))
	wrOID(buf, moRoot, root)
	wrOID(buf, moManual, man)
	if err := (*tx).Write(self, 0, buf); err != nil {
		return nil, err
	}
	mod.Self = self
	if err := (*tx).Commit(); err != nil {
		return nil, err
	}
	nt, err := c.Begin()
	if err != nil {
		return nil, err
	}
	*tx = nt
	return mod, nil
}

func encodeOID(o page.OID) []byte {
	var b [page.OIDSize]byte
	page.EncodeOID(b[:], o)
	return b[:]
}

// buildCompositePart creates the part header, its atomic-part graph and the
// interposed connection objects, clustered on fresh pages.
func buildCompositePart(tx *client.Tx, cfg Config, id int, rng *rand.Rand) (page.OID, error) {
	if _, err := tx.NewPage(); err != nil {
		return page.NilOID, err
	}
	self, err := tx.Allocate(CompPartSize)
	if err != nil {
		return page.NilOID, err
	}
	n := cfg.NumAtomicPerComp
	parts := make([]page.OID, n)
	for i := 0; i < n; i++ {
		p, err := tx.Allocate(AtomicPartSize)
		if err != nil {
			return page.NilOID, err
		}
		parts[i] = p
		buf := make([]byte, 16)
		wr32(buf, apID, uint32(id*n+i))
		wr32(buf, apX, rng.Uint32()%10000)
		wr32(buf, apY, rng.Uint32()%10000)
		wr32(buf, apBuildDate, uint32(1000+rng.Intn(1000)))
		if err := tx.Write(p, 0, buf); err != nil {
			return page.NilOID, err
		}
	}
	// Connections: part i → part (i+1) mod n guarantees reachability; the
	// remaining NumConnPerAtomic-1 targets are random [Carey93].
	for i := 0; i < n; i++ {
		for k := 0; k < cfg.NumConnPerAtomic; k++ {
			to := (i + 1) % n
			if k > 0 {
				to = rng.Intn(n)
			}
			conn, err := tx.Allocate(ConnectionSize)
			if err != nil {
				return page.NilOID, err
			}
			cbuf := make([]byte, 24)
			wrOID(cbuf, cnFrom, parts[i])
			wrOID(cbuf, cnTo, parts[to])
			if err := tx.Write(conn, 0, cbuf); err != nil {
				return page.NilOID, err
			}
			if err := tx.Write(parts[i], apConns+8*k, encodeOID(conn)); err != nil {
				return page.NilOID, err
			}
		}
	}
	hdr := make([]byte, 24)
	wr32(hdr, cpID, uint32(id))
	wr32(hdr, cpDate, uint32(2000+rng.Intn(1000)))
	wrOID(hdr, cpRootPart, parts[0])
	if err := tx.Write(self, 0, hdr); err != nil {
		return page.NilOID, err
	}
	return self, nil
}

// buildAssembly builds the hierarchy top-down and returns the root assembly.
func buildAssembly(tx *client.Tx, cfg Config, mod *Module, level int, rng *rand.Rand) (page.OID, error) {
	self, err := tx.Allocate(AssemblySize)
	if err != nil {
		return page.NilOID, err
	}
	buf := make([]byte, asChildren+8*cfg.NumAssmPerAssm)
	wr32(buf, asLevel, uint32(level))
	if level == 1 {
		// Base assembly: NumCompPerAssm composite parts chosen at random.
		for k := 0; k < cfg.NumCompPerAssm; k++ {
			cp := mod.CompParts[rng.Intn(len(mod.CompParts))]
			wrOID(buf, asChildren+8*k, cp)
		}
	} else {
		for k := 0; k < cfg.NumAssmPerAssm; k++ {
			child, err := buildAssembly(tx, cfg, mod, level-1, rng)
			if err != nil {
				return page.NilOID, err
			}
			wrOID(buf, asChildren+8*k, child)
		}
	}
	if err := tx.Write(self, 0, buf); err != nil {
		return page.NilOID, err
	}
	return self, nil
}

// buildManual writes the module's manual as a chain of chunk objects; the
// returned OID is the first chunk, which links to the next in its first 8
// bytes.
func buildManual(tx *client.Tx, cfg Config) (page.OID, error) {
	remaining := cfg.ManualSize
	var chunks []page.OID
	for remaining > 0 {
		sz := ManualChunk
		if remaining < sz {
			sz = remaining
		}
		if sz < page.OIDSize {
			sz = page.OIDSize
		}
		oid, err := tx.Allocate(sz)
		if err != nil {
			return page.NilOID, err
		}
		chunks = append(chunks, oid)
		remaining -= sz
	}
	for i := 0; i+1 < len(chunks); i++ {
		if err := tx.Write(chunks[i], 0, encodeOID(chunks[i+1])); err != nil {
			return page.NilOID, err
		}
	}
	return chunks[0], nil
}
