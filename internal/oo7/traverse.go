package oo7

import (
	"time"

	"fmt"

	"repro/internal/client"
	"repro/internal/costmodel"
	"repro/internal/page"
)

// Traversal identifies one of the paper's update traversals (§4.2).
type Traversal int

// The traversal variants.
const (
	// T2A updates the root atomic part of each composite part.
	T2A Traversal = iota
	// T2B updates every atomic part of each composite part.
	T2B
	// T2C updates every atomic part four times.
	T2C
	// T1 is the read-only raw traversal: same walk, no updates. The paper's
	// §6 claim — QuickStore's hardware-based detection does not impact
	// read-only transactions (one protection fault only happens on writes)
	// — is checked against this traversal in the tests.
	T1
)

// String implements fmt.Stringer.
func (t Traversal) String() string {
	switch t {
	case T2A:
		return "T2A"
	case T2B:
		return "T2B"
	case T2C:
		return "T2C"
	case T1:
		return "T1"
	default:
		return fmt.Sprintf("Traversal(%d)", int(t))
	}
}

// Result reports what a traversal did.
type Result struct {
	Updates      int // update operations performed
	AtomicVisits int // atomic parts visited (with repetition across composite visits)
	CompVisits   int // composite part visits
}

// Run performs the traversal over one module as a single transaction,
// committing at the end. Application CPU (object visits) is charged to m
// with p.VisitCPU per visit, batched per composite-part visit; updates go
// through the client's normal recovery machinery. The paper increments the
// (x,y) attributes rather than swapping them so repeated updates keep
// changing the object (§4.2 footnote).
func Run(c *client.Client, mod *Module, t Traversal, m costmodel.Meter, p *costmodel.Params) (Result, error) {
	tx, err := c.Begin()
	if err != nil {
		return Result{}, err
	}
	res, err := runIn(tx, mod, t, m, p)
	if err != nil {
		tx.Abort()
		return res, err
	}
	return res, tx.Commit()
}

// runIn is Run without transaction management (used by tests that share a
// transaction).
func runIn(tx *client.Tx, mod *Module, t Traversal, m costmodel.Meter, p *costmodel.Params) (Result, error) {
	var res Result
	// Read the module object and descend the assembly hierarchy DFS.
	modBuf, err := tx.ReadObject(mod.Self)
	if err != nil {
		return res, err
	}
	root := rdOID(modBuf, moRoot)
	if err := visitAssembly(tx, root, t, m, p, &res); err != nil {
		return res, err
	}
	return res, nil
}

func visitAssembly(tx *client.Tx, a page.OID, t Traversal, m costmodel.Meter, p *costmodel.Params, res *Result) error {
	buf, err := tx.ReadObject(a)
	if err != nil {
		return err
	}
	m.ClientCompute(p.VisitCPU)
	level := rd32(buf, asLevel)
	nchildren := (len(buf) - asChildren) / 8
	for k := 0; k < nchildren; k++ {
		child := rdOID(buf, asChildren+8*k)
		if child.IsNil() {
			continue
		}
		if level == 1 {
			if err := visitCompPart(tx, child, t, m, p, res); err != nil {
				return err
			}
		} else {
			if err := visitAssembly(tx, child, t, m, p, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// visitCompPart performs the depth-first search over the atomic-part graph,
// applying the traversal's updates.
func visitCompPart(tx *client.Tx, cp page.OID, t Traversal, m costmodel.Meter, p *costmodel.Params, res *Result) error {
	buf, err := tx.ReadObject(cp)
	if err != nil {
		return err
	}
	res.CompVisits++
	root := rdOID(buf, cpRootPart)
	visited := make(map[page.OID]bool)
	visits := 1 // the composite part itself
	if err := dfsAtomic(tx, root, true, t, visited, &visits, res); err != nil {
		return err
	}
	// Charge the application CPU for this composite-part visit in one block.
	m.ClientCompute(time.Duration(visits) * p.VisitCPU)
	return nil
}

// dfsAtomic visits part and, transitively, every part reachable through its
// connections. isRoot marks the composite part's designated root part.
func dfsAtomic(tx *client.Tx, part page.OID, isRoot bool, t Traversal, visited map[page.OID]bool, visits *int, res *Result) error {
	if visited[part] {
		return nil
	}
	visited[part] = true
	res.AtomicVisits++
	*visits++
	buf, err := tx.ReadObject(part)
	if err != nil {
		return err
	}
	// Apply the traversal's updates to this part.
	update := false
	times := 1
	switch t {
	case T1:
		// read-only
	case T2A:
		update = isRoot
	case T2B:
		update = true
	case T2C:
		update = true
		times = 4
	}
	if update {
		var xy [8]byte
		copy(xy[:], buf[apX:apX+8])
		for i := 0; i < times; i++ {
			wr32(xy[:], 0, rd32(xy[:], 0)+1)
			wr32(xy[:], 4, rd32(xy[:], 4)+1)
			if err := tx.Write(part, apX, xy[:]); err != nil {
				return err
			}
			res.Updates++
		}
	}
	// Follow the connections.
	nconn := (len(buf) - apConns) / 8
	for k := 0; k < nconn; k++ {
		connOID := rdOID(buf, apConns+8*k)
		if connOID.IsNil() {
			continue
		}
		cbuf, err := tx.ReadObject(connOID)
		if err != nil {
			return err
		}
		*visits++
		if err := dfsAtomic(tx, rdOID(cbuf, cnTo), false, t, visited, visits, res); err != nil {
			return err
		}
	}
	return nil
}

// CollectAtomicParts returns every atomic part reachable from the module's
// composite parts, in deterministic order (composite parts in build order,
// then the connection DFS). The crash-point sweep uses the list to drive
// small targeted update transactions with a known expected final state.
func CollectAtomicParts(c *client.Client, mod *Module) ([]page.OID, error) {
	tx, err := c.Begin()
	if err != nil {
		return nil, err
	}
	defer tx.Abort()
	var out []page.OID
	seen := make(map[page.OID]bool)
	for _, cp := range mod.CompParts {
		buf, err := tx.ReadObject(cp)
		if err != nil {
			return nil, err
		}
		if err := collectAtomic(tx, rdOID(buf, cpRootPart), seen, &out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// collectAtomic appends part and everything reachable through its
// connections to out, depth first, skipping already-seen parts.
func collectAtomic(tx *client.Tx, part page.OID, seen map[page.OID]bool, out *[]page.OID) error {
	if seen[part] {
		return nil
	}
	seen[part] = true
	*out = append(*out, part)
	buf, err := tx.ReadObject(part)
	if err != nil {
		return err
	}
	nconn := (len(buf) - apConns) / 8
	for k := 0; k < nconn; k++ {
		connOID := rdOID(buf, apConns+8*k)
		if connOID.IsNil() {
			continue
		}
		cbuf, err := tx.ReadObject(connOID)
		if err != nil {
			return err
		}
		if err := collectAtomic(tx, rdOID(cbuf, cnTo), seen, out); err != nil {
			return err
		}
	}
	return nil
}

// StampXY writes (x, y) = (val, val) into the atomic part — the paper's
// 8-byte update region — in one write.
func StampXY(tx *client.Tx, part page.OID, val uint32) error {
	var b [8]byte
	wr32(b[:], 0, val)
	wr32(b[:], 4, val)
	return tx.Write(part, apX, b[:])
}

// ReadXY returns the atomic part's (x, y) attributes.
func ReadXY(tx *client.Tx, part page.OID) (x, y uint32, err error) {
	buf, err := tx.ReadObject(part)
	if err != nil {
		return 0, 0, err
	}
	return rd32(buf, apX), rd32(buf, apY), nil
}
