// Package client implements the QuickStore client: a memory-mapped
// persistent object store (paper [White94]) with the four recovery schemes
// of the paper.
//
//   - PD  (page differencing, §3.2): the first write to a page faults, the
//     fault handler copies the page into the recovery buffer, takes an
//     exclusive lock, and write-enables the frame; log records are generated
//     later by diffing the copy against the buffer pool.
//   - SD  (sub-page differencing, §3.3): updates go through a software
//     update function that copies the containing 64-byte block on first
//     touch; blocks are diffed at log-generation time.
//   - SL  (sub-page logging): as SD but whole blocks are logged undiffed.
//   - WPL (whole-page logging, §3.4): no client-side copies or log records;
//     dirty pages are shipped at commit and logged whole at the server.
//
// The redo-at-server variant (PD-REDO, §3.5) is a client-visible flag,
// ShipDirtyPages=false: the client generates log records exactly as PD but
// never ships the pages themselves.
//
// Log records for a page are always shipped before the page itself, and all
// dirty pages are shipped at commit (ESM's force-to-server-at-commit), as
// §3.1 requires.
package client

import (
	"errors"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/costmodel"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/recbuf"
	"repro/internal/vmem"
	"repro/internal/wire"
)

// Scheme selects the client's log-record generation strategy (Table 3).
type Scheme int

// Client schemes.
const (
	// PD is page differencing.
	PD Scheme = iota
	// SD is sub-page differencing.
	SD
	// SL is sub-page logging (no diffing).
	SL
	// WPL is whole-page logging (the ObjectStore approach).
	WPL
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case PD:
		return "PD"
	case SD:
		return "SD"
	case SL:
		return "SL"
	case WPL:
		return "WPL"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Errors returned by the client.
var (
	ErrTxnActive   = errors.New("client: a transaction is already active")
	ErrNoTxn       = errors.New("client: no active transaction")
	ErrObjectLarge = errors.New("client: object larger than a page")
)

// Config configures a Client. The zero value plus a Service is usable: PD
// with the paper's unconstrained memory split (8 MB pool, 4 MB recovery
// buffer).
type Config struct {
	Scheme Scheme
	// PoolPages is the client buffer pool size in frames (default 1024, 8 MB).
	PoolPages int
	// RecoveryBytes is the recovery buffer capacity (default 4 MB). Ignored
	// for WPL, which dedicates all client memory to the pool.
	RecoveryBytes int
	// BlockSize is the sub-page block size for SD/SL (default 64 bytes; the
	// paper experimented with 8–64 and reports 64).
	BlockSize int
	// ShipDirtyPages controls whether dirty pages are shipped at commit and
	// eviction. True for ESM and WPL servers; false for redo-at-server.
	ShipDirtyPages bool
	// AdaptiveRecoveryBuffer enables the paper's §7 future-work policy:
	// after each commit, memory shifts between the buffer pool and the
	// recovery buffer toward whichever was under more pressure (spills grow
	// the recovery buffer, evictions grow the pool). The total budget stays
	// PoolPages*8 KB + RecoveryBytes.
	AdaptiveRecoveryBuffer bool
	// Meter receives the client's work; nil means no accounting.
	Meter costmodel.Meter
	// Params supplies service times for the meter; nil means defaults.
	Params *costmodel.Params
	// Retry, when MaxAttempts > 1, wraps the transport with bounded retry
	// plus exponential backoff and jitter for transient transport faults
	// (wire.WithRetry). After exhaustion operations return
	// wire.ErrServerUnavailable.
	Retry wire.RetryPolicy
}

// Stats counts client-side work. Figure 9/14 derive their page-write counts
// from LogBytesShipped and DirtyPagesShipped deltas per transaction.
type Stats struct {
	Faults            int64 // write-protection faults handled
	Updates           int64 // update operations performed
	PageCopies        int64 // pages copied into the recovery buffer (PD)
	BlockCopies       int64 // blocks copied into the recovery buffer (SD/SL)
	PageDiffs         int64 // pages diffed (PD)
	BlockDiffs        int64 // blocks diffed (SD)
	LogRecords        int64 // log records generated
	LogBytesShipped   int64 // bytes of encoded log records shipped
	LogPagesShipped   int64 // 8 KB log pages shipped
	DirtyPagesShipped int64 // dirty data pages shipped
	PagesFetched      int64 // pages fetched from the server
	RecbufSpills      int64 // pages force-spilled from the recovery buffer
	Evictions         int64 // pages evicted from the client pool
	Commits           int64
	Aborts            int64
}

// Client is one application process's QuickStore runtime. Not safe for
// concurrent use: like the paper's clients, one workstation runs one
// application thread.
type Client struct {
	cfg   Config
	svc   wire.Service
	pool  *buffer.Pool
	space *vmem.Space
	rb    *recbuf.Buffer
	m     costmodel.Meter
	p     *costmodel.Params
	tx    *Tx
	stats Stats
	// allocPage is the page new objects are placed on until it fills.
	allocPage page.ID
}

// New creates a client speaking to svc.
func New(cfg Config, svc wire.Service) *Client {
	if cfg.PoolPages == 0 {
		cfg.PoolPages = (8 << 20) / page.Size
	}
	if cfg.RecoveryBytes == 0 {
		cfg.RecoveryBytes = 4 << 20
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 64
	}
	if cfg.Meter == nil {
		cfg.Meter = costmodel.NopMeter{}
	}
	if cfg.Params == nil {
		cfg.Params = costmodel.Default1995()
	}
	svc = wire.WithRetry(svc, cfg.Retry) // no-op unless MaxAttempts > 1
	c := &Client{
		cfg:   cfg,
		svc:   svc,
		pool:  buffer.NewPool(cfg.PoolPages),
		space: vmem.NewSpace(),
		m:     cfg.Meter,
		p:     cfg.Params,
	}
	if cfg.Scheme != WPL {
		c.rb = recbuf.New(cfg.RecoveryBytes)
	}
	c.space.SetFaultHandler(c.handleFault)
	return c
}

// Scheme returns the configured scheme.
func (c *Client) Scheme() Scheme { return c.cfg.Scheme }

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() Stats { return c.stats }

// Pool exposes buffer pool statistics for the harness.
func (c *Client) Pool() *buffer.Pool { return c.pool }

// RecoveryBufferBytes returns the recovery buffer's current capacity (it
// moves when AdaptiveRecoveryBuffer is on); zero for WPL.
func (c *Client) RecoveryBufferBytes() int {
	if c.rb == nil {
		return 0
	}
	return c.rb.Cap()
}

// adaptSplit rebalances client memory after a commit based on this
// transaction's pressure signals. It moves one step (1/16 of the smaller
// side, at least one page) from the less-pressured side to the other.
func (c *Client) adaptSplit(spills, evictions int64) {
	if !c.cfg.AdaptiveRecoveryBuffer || c.rb == nil {
		return
	}
	const minPool = 8
	var deltaPages int
	switch {
	case spills > 2*evictions:
		deltaPages = c.pool.Capacity() / 16 // grow recovery buffer
	case evictions > 2*spills:
		deltaPages = -(c.rb.Cap() / page.Size) / 16 // grow pool
	default:
		return
	}
	if deltaPages == 0 {
		if spills > 2*evictions {
			deltaPages = 1
		} else {
			deltaPages = -1
		}
	}
	newPool := c.pool.Capacity() - deltaPages
	newRec := c.rb.Cap() + deltaPages*page.Size
	if newPool < minPool || newRec < page.Size {
		return
	}
	// Shrinking the pool requires evicting surplus pages; this runs between
	// transactions, so every page is clean and eviction is cheap.
	for c.pool.Len() > newPool {
		v := c.pool.Victim()
		if v == nil {
			return
		}
		if d := c.space.ByPage(v.PID()); d != nil {
			c.space.Unmap(d)
		}
		c.stats.Evictions++
		c.pool.Remove(v.PID())
	}
	c.pool.SetCapacity(newPool)
	c.rb.SetCap(newRec)
}

// Space exposes the address space for tests.
func (c *Client) Space() *vmem.Space { return c.space }

// Begin starts a transaction. One transaction may be active at a time.
func (c *Client) Begin() (*Tx, error) {
	if c.tx != nil {
		return nil, ErrTxnActive
	}
	tid, err := c.svc.Begin()
	if err != nil {
		return nil, err
	}
	c.tx = &Tx{
		c:              c,
		tid:            tid,
		dirty:          make(map[page.ID]bool),
		fresh:          make(map[page.ID]bool),
		xlocked:        make(map[page.ID]bool),
		slocked:        make(map[page.ID]bool),
		startSpills:    c.stats.RecbufSpills,
		startEvictions: c.stats.Evictions,
	}
	return c.tx, nil
}

// handleFault is the QuickStore page-fault handler (paper §3.2.1): invoked
// on the first write to a write-protected frame.
func (c *Client) handleFault(d *vmem.Desc, _ vmem.Addr, write bool) error {
	if !write {
		return fmt.Errorf("%w: read fault on %v", vmem.ErrProtection, d.Page)
	}
	if c.tx == nil {
		return fmt.Errorf("%w: write outside transaction", ErrNoTxn)
	}
	c.m.ClientCompute(c.p.Fault)
	c.stats.Faults++
	return c.tx.enableRecovery(d)
}

// fetch makes pid resident and returns its descriptor, evicting as needed.
// Pages cached across transaction boundaries still need a lock each
// transaction — ESM caches pages but not locks (§3.1).
func (c *Client) fetch(tx *Tx, pid page.ID) (*vmem.Desc, error) {
	if d := c.space.ByPage(pid); d != nil {
		c.pool.Get(pid) // recency
		if !tx.slocked[pid] && !tx.xlocked[pid] {
			if err := c.svc.Lock(tx.tid, pid, lock.Shared); err != nil {
				return nil, err
			}
			tx.slocked[pid] = true
		}
		return d, nil
	}
	if c.pool.Full() {
		if err := c.evictOne(tx); err != nil {
			return nil, err
		}
	}
	data, err := c.svc.ReadPage(tx.tid, pid, lock.Shared)
	if err != nil {
		return nil, err
	}
	tx.slocked[pid] = true
	c.stats.PagesFetched++
	f, err := c.pool.Insert(pid, data)
	if err != nil {
		return nil, err
	}
	return c.space.Map(pid, f.Bytes()), nil
}

// evictOne pushes the LRU page out of the client pool, generating log
// records and shipping the page as the recovery scheme requires (paper:
// "when paging in the buffer pool occurs").
func (c *Client) evictOne(tx *Tx) error {
	v := c.pool.Victim()
	if v == nil {
		return fmt.Errorf("%w: client pool wedged", buffer.ErrNoFrame)
	}
	pid := v.PID()
	d := c.space.ByPage(pid)
	if v.Dirty() && tx != nil {
		if err := tx.emitLogForPage(pid); err != nil {
			return err
		}
		if err := tx.flushLog(); err != nil {
			return err
		}
		if c.cfg.ShipDirtyPages {
			if err := c.svc.ShipPage(tx.tid, pid, v.Bytes()); err != nil {
				return err
			}
			c.stats.DirtyPagesShipped++
		}
		delete(tx.dirty, pid)
		delete(tx.fresh, pid)
		if c.rb != nil {
			c.rb.Drop(pid)
		}
		c.pool.MarkClean(pid)
	}
	if d != nil {
		c.space.Unmap(d)
	}
	c.stats.Evictions++
	return c.pool.Remove(pid)
}
