package client

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/diff"
	"repro/internal/lock"
	"repro/internal/logrec"
	"repro/internal/page"
	"repro/internal/vmem"
)

// Tx is an active transaction. All object access goes through it; at most
// one transaction is active per client.
type Tx struct {
	c       *Client
	tid     logrec.TID
	dirty   map[page.ID]bool // pages updated and still resident
	fresh   map[page.ID]bool // pages created by this transaction
	xlocked map[page.ID]bool // pages exclusively locked this transaction
	slocked map[page.ID]bool // pages share-locked this transaction
	logBuf  []byte           // encoded log records awaiting shipment
	done    bool
	// Pressure counters at Begin, for the adaptive memory-split policy.
	startSpills    int64
	startEvictions int64
}

// TID returns the server-assigned transaction id.
func (tx *Tx) TID() logrec.TID { return tx.tid }

func (tx *Tx) check() error {
	if tx.done || tx.c.tx != tx {
		return ErrNoTxn
	}
	return nil
}

// ensureX acquires the exclusive page lock once per transaction.
func (tx *Tx) ensureX(pid page.ID) error {
	if tx.xlocked[pid] {
		return nil
	}
	if err := tx.c.svc.Lock(tx.tid, pid, lock.Exclusive); err != nil {
		return err
	}
	tx.xlocked[pid] = true
	return nil
}

// markDirty records that the page has uncommitted updates.
func (tx *Tx) markDirty(d *vmem.Desc) {
	d.Dirty = true
	tx.dirty[d.Page] = true
	tx.c.pool.MarkDirty(d.Page)
}

// enableRecovery performs the scheme's first-write work for a page (the
// body of the paper's fault handler, §3.2.1 / §3.4.1).
func (tx *Tx) enableRecovery(d *vmem.Desc) error {
	c := tx.c
	switch c.cfg.Scheme {
	case PD:
		if !d.RecoveryEnabled && !tx.fresh[d.Page] {
			if err := tx.spillFor(page.Size); err != nil {
				return err
			}
			c.m.ClientCompute(c.p.CopyPage)
			c.rb.PutPage(d.Page, d.Frame)
			c.stats.PageCopies++
		}
		if err := tx.ensureX(d.Page); err != nil {
			return err
		}
		d.RecoveryEnabled = true
	case WPL:
		if err := tx.ensureX(d.Page); err != nil {
			return err
		}
		d.RecoveryEnabled = true
	default:
		// SD/SL route updates through the update function and deliberately
		// leave frames write-protected to catch stray writes (§3.3.1).
		return fmt.Errorf("%w: stray write to %v under %v",
			vmem.ErrProtection, d.Page, c.cfg.Scheme)
	}
	c.space.Protect(d, vmem.ReadWrite)
	tx.markDirty(d)
	return nil
}

// spillFor frees recovery-buffer space by generating log records for the
// FIFO-oldest page and dropping its copies (§3.2.1). Spilled pages are
// re-protected so later updates capture a fresh before-image.
func (tx *Tx) spillFor(n int) error {
	c := tx.c
	for !c.rb.Fits(n) {
		victim, ok := c.rb.Oldest()
		if !ok {
			return fmt.Errorf("client: recovery buffer too small for %d bytes", n)
		}
		if err := tx.emitLogForPage(victim); err != nil {
			return err
		}
		c.rb.Drop(victim)
		c.rb.NoteSpill()
		c.stats.RecbufSpills++
		if d := c.space.ByPage(victim); d != nil {
			d.RecoveryEnabled = false
			if c.cfg.Scheme == PD {
				c.space.Protect(d, vmem.ReadOnly)
			}
		}
	}
	return nil
}

// touchBlocks copies the not-yet-copied blocks overlapping [start,start+n)
// into the recovery buffer (the SD update function's first-touch work).
func (tx *Tx) touchBlocks(d *vmem.Desc, start, n int) error {
	c := tx.c
	bs := c.cfg.BlockSize
	for b := start / bs; b <= (start+n-1)/bs; b++ {
		if c.rb.HasBlock(d.Page, b) {
			continue
		}
		if err := tx.spillFor(bs); err != nil {
			return err
		}
		c.m.ClientCompute(c.p.CopyBlock)
		c.rb.PutBlock(d.Page, b, d.Frame[b*bs:(b+1)*bs])
		c.stats.BlockCopies++
	}
	return nil
}

// prepareStructWrite readies a page for a runtime-internal structural
// mutation (object allocation or free): the same recovery work as an update
// covering the whole page, without the protection-fault detour.
func (tx *Tx) prepareStructWrite(d *vmem.Desc) error {
	c := tx.c
	if tx.fresh[d.Page] {
		tx.markDirty(d)
		return nil
	}
	switch c.cfg.Scheme {
	case PD:
		if !d.RecoveryEnabled {
			if err := tx.spillFor(page.Size); err != nil {
				return err
			}
			c.m.ClientCompute(c.p.CopyPage)
			c.rb.PutPage(d.Page, d.Frame)
			c.stats.PageCopies++
			d.RecoveryEnabled = true
		}
	case SD, SL:
		// Conservative: capture every block; allocation moves header, slot
		// directory and object bytes. The paper's measured workloads only
		// allocate at load time.
		if err := tx.touchBlocks(d, 0, page.Size); err != nil {
			return err
		}
	case WPL:
		// Nothing to capture.
	}
	if err := tx.ensureX(d.Page); err != nil {
		return err
	}
	c.space.Protect(d, vmem.ReadWrite)
	tx.markDirty(d)
	return nil
}

// --- object operations ------------------------------------------------------

// objectRange resolves an OID to its descriptor and the page-offset range of
// the object.
func (tx *Tx) objectRange(oid page.OID) (*vmem.Desc, int, int, error) {
	if err := tx.check(); err != nil {
		return nil, 0, 0, err
	}
	d, err := tx.c.fetch(tx, oid.Page)
	if err != nil {
		return nil, 0, 0, err
	}
	pg := page.Wrap(d.Frame)
	off, err := pg.ObjectOffset(int(oid.Slot))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("client: %v: %w", oid, err)
	}
	size, err := pg.ObjectSize(int(oid.Slot))
	if err != nil {
		return nil, 0, 0, err
	}
	return d, off, size, nil
}

// Size returns the object's size in bytes.
func (tx *Tx) Size(oid page.OID) (int, error) {
	_, _, size, err := tx.objectRange(oid)
	return size, err
}

// Read copies len(dst) bytes from the object starting at off.
func (tx *Tx) Read(oid page.OID, off int, dst []byte) error {
	d, objOff, size, err := tx.objectRange(oid)
	if err != nil {
		return err
	}
	if off < 0 || off+len(dst) > size {
		return fmt.Errorf("client: read [%d,%d) outside %v (size %d)", off, off+len(dst), oid, size)
	}
	tx.c.m.ClientCompute(tx.c.p.Deref)
	return tx.c.space.Read(d.VAddr+uint64(objOff+off), dst)
}

// ReadObject returns a copy of the whole object.
func (tx *Tx) ReadObject(oid page.OID) ([]byte, error) {
	_, _, size, err := tx.objectRange(oid)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	if err := tx.Read(oid, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Write stores data into the object starting at off. Under PD and WPL the
// write goes through the virtual-memory protection machinery (first write
// per page faults); under SD and SL it goes through the software update
// function.
func (tx *Tx) Write(oid page.OID, off int, data []byte) error {
	d, objOff, size, err := tx.objectRange(oid)
	if err != nil {
		return err
	}
	if off < 0 || off+len(data) > size {
		return fmt.Errorf("client: write [%d,%d) outside %v (size %d)", off, off+len(data), oid, size)
	}
	c := tx.c
	c.stats.Updates++
	start := objOff + off
	switch c.cfg.Scheme {
	case SD, SL:
		c.m.ClientCompute(c.p.UpdateCall)
		if !tx.fresh[oid.Page] {
			if err := tx.touchBlocks(d, start, len(data)); err != nil {
				return err
			}
		}
		if err := tx.ensureX(oid.Page); err != nil {
			return err
		}
		copy(d.Frame[start:start+len(data)], data)
		tx.markDirty(d)
		return nil
	default:
		return c.space.Write(d.VAddr+uint64(start), data)
	}
}

// Allocate creates a new object of the given size on the client's current
// allocation page, moving to a fresh page when it fills.
func (tx *Tx) Allocate(size int) (page.OID, error) {
	if err := tx.check(); err != nil {
		return page.NilOID, err
	}
	if size > page.MaxObjectSize {
		return page.NilOID, ErrObjectLarge
	}
	if tx.c.allocPage != 0 {
		oid, err, ok := tx.tryAllocateOn(tx.c.allocPage, size)
		if ok {
			return oid, err
		}
	}
	if _, err := tx.NewPage(); err != nil {
		return page.NilOID, err
	}
	oid, err, ok := tx.tryAllocateOn(tx.c.allocPage, size)
	if !ok {
		return page.NilOID, fmt.Errorf("client: object of %d bytes does not fit a fresh page", size)
	}
	return oid, err
}

// tryAllocateOn attempts allocation on pid; ok=false means the page is full.
func (tx *Tx) tryAllocateOn(pid page.ID, size int) (page.OID, error, bool) {
	d, err := tx.c.fetch(tx, pid)
	if err != nil {
		return page.NilOID, err, true
	}
	pg := page.Wrap(d.Frame)
	if pg.FreeSpace() < size {
		return page.NilOID, nil, false
	}
	if err := tx.prepareStructWrite(d); err != nil {
		return page.NilOID, err, true
	}
	slot, err := pg.Allocate(size)
	if errors.Is(err, page.ErrPageFull) {
		return page.NilOID, nil, false
	}
	if err != nil {
		return page.NilOID, err, true
	}
	return page.OID{Page: pid, Slot: uint16(slot)}, nil, true
}

// NewPage starts a fresh allocation page and makes it current, giving
// loaders control over clustering (OO7 clusters each composite part's
// atomic parts and connections together).
func (tx *Tx) NewPage() (page.ID, error) {
	if err := tx.check(); err != nil {
		return 0, err
	}
	c := tx.c
	pid, err := c.svc.AllocPage(tx.tid)
	if err != nil {
		return 0, err
	}
	if c.pool.Full() {
		if err := c.evictOne(tx); err != nil {
			return 0, err
		}
	}
	f, err := c.pool.Insert(pid, nil)
	if err != nil {
		return 0, err
	}
	page.Wrap(f.Bytes()).Init(pid)
	d := c.space.Map(pid, f.Bytes())
	tx.fresh[pid] = true
	tx.xlocked[pid] = true // AllocPage grants the X lock at the server
	d.RecoveryEnabled = true
	c.space.Protect(d, vmem.ReadWrite)
	tx.markDirty(d)
	c.allocPage = pid
	return pid, nil
}

// Free releases an object.
func (tx *Tx) Free(oid page.OID) error {
	d, _, _, err := tx.objectRange(oid)
	if err != nil {
		return err
	}
	if err := tx.prepareStructWrite(d); err != nil {
		return err
	}
	return page.Wrap(d.Frame).Free(int(oid.Slot))
}

// --- log generation ----------------------------------------------------------

// appendRec queues a record for shipment; a full log page is shipped as soon
// as the next record would not fit (ESM ships log records a page at a time).
func (tx *Tx) appendRec(r *logrec.Record) error {
	c := tx.c
	sz := r.EncodedSize()
	if len(tx.logBuf) > 0 && len(tx.logBuf)+sz > page.Size {
		if err := tx.flushLog(); err != nil {
			return err
		}
	}
	tx.logBuf = r.Encode(tx.logBuf)
	c.stats.LogRecords++
	c.m.ClientCompute(c.p.LogRecCPU)
	if len(tx.logBuf) >= page.Size {
		return tx.flushLog()
	}
	return nil
}

// flushLog ships any buffered log records to the server.
func (tx *Tx) flushLog() error {
	if len(tx.logBuf) == 0 {
		return nil
	}
	c := tx.c
	if err := c.svc.ShipLog(tx.tid, tx.logBuf); err != nil {
		return err
	}
	c.stats.LogBytesShipped += int64(len(tx.logBuf))
	c.stats.LogPagesShipped += int64((len(tx.logBuf) + page.Size - 1) / page.Size)
	tx.logBuf = tx.logBuf[:0]
	return nil
}

// emitLogForPage generates log records describing pid's uncommitted changes:
// a whole-page image for fresh pages, diffed records for PD, block diffs for
// SD, whole blocks for SL. WPL generates none (§3.4.1).
func (tx *Tx) emitLogForPage(pid page.ID) error {
	c := tx.c
	if c.cfg.Scheme == WPL {
		return nil
	}
	f := c.pool.Peek(pid)
	if f == nil {
		return nil
	}
	if tx.fresh[pid] {
		return tx.appendRec(logrec.NewPageImage(tx.tid, pid, f.Bytes()))
	}
	e := c.rb.Entry(pid)
	if e == nil {
		return nil // already spilled; nothing new captured since
	}
	if e.Image != nil {
		c.m.ClientCompute(c.p.DiffPage)
		c.stats.PageDiffs++
		return tx.emitPageDiff(pid, e.Image, f.Bytes())
	}
	// Sub-page blocks, in index order for determinism.
	idxs := make([]int, 0, len(e.Blocks))
	for b := range e.Blocks {
		idxs = append(idxs, b)
	}
	sort.Ints(idxs)
	bs := c.cfg.BlockSize
	for _, b := range idxs {
		old := e.Blocks[b]
		cur := f.Bytes()[b*bs : b*bs+len(old)]
		if c.cfg.Scheme == SL {
			// Log the whole block undiffed.
			if err := tx.appendRec(logrec.NewUpdate(tx.tid, pid, b*bs, old, cur)); err != nil {
				return err
			}
			continue
		}
		c.m.ClientCompute(c.p.DiffBlock)
		c.stats.BlockDiffs++
		for _, r := range diff.Regions(old, cur) {
			rec := logrec.NewUpdate(tx.tid, pid, b*bs+r.Off, old[r.Off:r.End()], cur[r.Off:r.End()])
			if err := tx.appendRec(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// emitPageDiff produces the PD log records for one page. When the page's
// structure (header and slot directory) is unchanged, objects are diffed
// individually — log records never span objects, per ESM. Structural changes
// fall back to a raw whole-page diff, which is correct for any change.
func (tx *Tx) emitPageDiff(pid page.ID, old, cur []byte) error {
	po, pn := page.Wrap(old), page.Wrap(cur)
	if structuralChange(old, cur) {
		// Raw diff of everything past the page-LSN field (server-owned).
		for _, r := range diff.Regions(old[page.HeaderSize/2:], cur[page.HeaderSize/2:]) {
			off := r.Off + page.HeaderSize/2
			rec := logrec.NewUpdate(tx.tid, pid, off, old[off:off+r.Len], cur[off:off+r.Len])
			if err := tx.appendRec(rec); err != nil {
				return err
			}
		}
		return nil
	}
	var firstErr error
	pn.LiveObjects(func(slot int, data []byte) {
		if firstErr != nil {
			return
		}
		off, err := po.ObjectOffset(slot)
		if err != nil {
			firstErr = err
			return
		}
		oldData := old[off : off+len(data)]
		for _, r := range diff.Regions(oldData, data) {
			rec := logrec.NewUpdate(tx.tid, pid, off+r.Off, oldData[r.Off:r.End()], data[r.Off:r.End()])
			if err := tx.appendRec(rec); err != nil {
				firstErr = err
				return
			}
		}
	})
	return firstErr
}

// structuralChange reports whether the page header (beyond the LSN) or slot
// directory differs between the two images.
func structuralChange(old, cur []byte) bool {
	for i := 8; i < page.HeaderSize; i++ {
		if old[i] != cur[i] {
			return true
		}
	}
	n := page.Wrap(old).SlotCount()
	if m := page.Wrap(cur).SlotCount(); m > n {
		n = m
	}
	dirEnd := page.Size - page.TrailerSize
	for i := dirEnd - 4*n; i < dirEnd; i++ {
		if old[i] != cur[i] {
			return true
		}
	}
	return false
}

// --- commit / abort ----------------------------------------------------------

// Commit generates any remaining log records, ships them followed by the
// dirty pages (unless running redo-at-server), commits at the server, and
// resets per-transaction state. Cached pages stay resident across the
// boundary; locks do not (§3.1).
func (tx *Tx) Commit() error {
	if err := tx.check(); err != nil {
		return err
	}
	c := tx.c
	pids := make([]page.ID, 0, len(tx.dirty))
	for pid := range tx.dirty {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		if err := tx.emitLogForPage(pid); err != nil {
			return err
		}
	}
	if err := tx.flushLog(); err != nil {
		return err
	}
	if c.cfg.ShipDirtyPages {
		for _, pid := range pids {
			f := c.pool.Peek(pid)
			if f == nil {
				continue
			}
			if err := c.svc.ShipPage(tx.tid, pid, f.Bytes()); err != nil {
				return err
			}
			c.stats.DirtyPagesShipped++
		}
	}
	if err := c.svc.Commit(tx.tid); err != nil {
		return err
	}
	for _, pid := range pids {
		c.pool.MarkClean(pid)
		if d := c.space.ByPage(pid); d != nil {
			d.Dirty = false
			d.RecoveryEnabled = false
			c.space.Protect(d, vmem.ReadOnly)
		}
	}
	if c.rb != nil {
		c.rb.Clear()
	}
	c.stats.Commits++
	c.adaptSplit(c.stats.RecbufSpills-tx.startSpills, c.stats.Evictions-tx.startEvictions)
	tx.done = true
	c.tx = nil
	return nil
}

// Abort rolls the transaction back at the server and discards the client's
// modified pages; they are re-fetched on demand.
func (tx *Tx) Abort() error {
	if err := tx.check(); err != nil {
		return err
	}
	c := tx.c
	if err := c.svc.Abort(tx.tid); err != nil {
		return err
	}
	for pid := range tx.dirty {
		c.pool.MarkClean(pid)
		if d := c.space.ByPage(pid); d != nil {
			c.space.Unmap(d)
		}
		c.pool.Remove(pid)
		if c.allocPage == pid {
			c.allocPage = 0
		}
	}
	if c.rb != nil {
		c.rb.Clear()
	}
	c.stats.Aborts++
	tx.done = true
	c.tx = nil
	return nil
}
