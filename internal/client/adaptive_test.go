package client

import (
	"testing"

	"repro/internal/page"
)

// TestAdaptiveSplitGrowsRecoveryBufferUnderSpills drives a spill-heavy
// workload and checks that memory shifts from the pool to the recovery
// buffer while the total budget stays constant.
func TestAdaptiveSplitGrowsRecoveryBufferUnderSpills(t *testing.T) {
	v := versions[0]              // PD-ESM
	r := newRig(v, 64, page.Size) // tiny recovery buffer: constant spills
	r.cli.cfg.AdaptiveRecoveryBuffer = true

	tx := mustBegin(t, r.cli)
	var oids []page.OID
	for i := 0; i < 16; i++ {
		if _, err := tx.NewPage(); err != nil {
			t.Fatal(err)
		}
		oid, err := tx.Allocate(64)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	budget := r.cli.pool.Capacity()*page.Size + r.cli.rb.Cap()
	recBefore := r.cli.RecoveryBufferBytes()

	for round := 0; round < 12; round++ {
		tx := mustBegin(t, r.cli)
		for i, oid := range oids {
			if err := tx.Write(oid, 0, []byte{byte(round), byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	recAfter := r.cli.RecoveryBufferBytes()
	if recAfter <= recBefore {
		t.Fatalf("recovery buffer did not grow: %d -> %d", recBefore, recAfter)
	}
	if got := r.cli.pool.Capacity()*page.Size + r.cli.rb.Cap(); got != budget {
		t.Fatalf("memory budget changed: %d -> %d", budget, got)
	}
	// Correctness maintained.
	r.srv.Crash()
	if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
		t.Fatal(err)
	}
	r.reconnect(v)
	vtx := mustBegin(t, r.cli)
	for i, oid := range oids {
		got := make([]byte, 2)
		if err := vtx.Read(oid, 0, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != 11 || got[1] != byte(i) {
			t.Fatalf("object %d: %v", i, got)
		}
	}
}

// TestAdaptiveSplitShrinksRecoveryBufferUnderPaging drives an eviction-heavy
// read-mostly workload and checks that memory shifts toward the pool.
func TestAdaptiveSplitShrinksRecoveryBufferUnderPaging(t *testing.T) {
	v := versions[0]
	r := newRig(v, 8, 64*page.Size) // tiny pool, large recovery buffer
	r.cli.cfg.AdaptiveRecoveryBuffer = true

	tx := mustBegin(t, r.cli)
	var oids []page.OID
	for i := 0; i < 40; i++ {
		if _, err := tx.NewPage(); err != nil {
			t.Fatal(err)
		}
		oid, err := tx.Allocate(64)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	poolBefore := r.cli.pool.Capacity()

	for round := 0; round < 12; round++ {
		tx := mustBegin(t, r.cli)
		for _, oid := range oids {
			buf := make([]byte, 1)
			if err := tx.Read(oid, 0, buf); err != nil {
				t.Fatal(err)
			}
		}
		// One small write so the transaction isn't read-only.
		if err := tx.Write(oids[round%len(oids)], 0, []byte{byte(round)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.cli.pool.Capacity(); got <= poolBefore {
		t.Fatalf("pool did not grow: %d -> %d", poolBefore, got)
	}
}

// TestAdaptiveOffByDefault guards the default behaviour.
func TestAdaptiveOffByDefault(t *testing.T) {
	r := newRig(versions[0], 64, page.Size)
	tx := mustBegin(t, r.cli)
	var oids []page.OID
	for i := 0; i < 8; i++ {
		tx.NewPage()
		oid, _ := tx.Allocate(8)
		oids = append(oids, oid)
	}
	tx.Commit()
	for round := 0; round < 5; round++ {
		tx := mustBegin(t, r.cli)
		for _, oid := range oids {
			tx.Write(oid, 0, []byte{byte(round)})
		}
		tx.Commit()
	}
	if r.cli.RecoveryBufferBytes() != page.Size {
		t.Fatalf("recovery buffer moved without the flag: %d", r.cli.RecoveryBufferBytes())
	}
}
