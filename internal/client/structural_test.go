package client

import (
	"bytes"
	"testing"

	"repro/internal/page"
)

// TestStructuralChangeDiffFallback exercises the PD raw-diff path: an
// allocation on an existing page changes the header and slot directory, so
// the per-object diff gives way to a whole-page raw diff — which must still
// recover correctly.
func TestStructuralChangeDiffFallback(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 64, 1<<20)
			// Transaction 1: one object on a page, committed.
			tx := mustBegin(t, r.cli)
			a, err := tx.Allocate(100)
			if err != nil {
				t.Fatal(err)
			}
			tx.Write(a, 0, []byte("first object"))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Transaction 2: allocate a second object on the SAME page
			// (structural change) and update the first.
			tx2 := mustBegin(t, r.cli)
			b, err := tx2.Allocate(100) // allocPage still points at a's page
			if err != nil {
				t.Fatal(err)
			}
			if b.Page != a.Page {
				t.Fatalf("allocation moved pages: %v vs %v", a, b)
			}
			tx2.Write(b, 0, []byte("second object"))
			tx2.Write(a, 0, []byte("FIRST object"))
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			// Transaction 3: free the first object (another structural
			// change), commit, crash, verify.
			tx3 := mustBegin(t, r.cli)
			if err := tx3.Free(a); err != nil {
				t.Fatal(err)
			}
			if err := tx3.Commit(); err != nil {
				t.Fatal(err)
			}
			r.srv.Crash()
			if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
				t.Fatal(err)
			}
			r.reconnect(v)
			tx4 := mustBegin(t, r.cli)
			got, err := tx4.ReadObject(b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:13], []byte("second object")) {
				t.Fatalf("b = %q", got[:13])
			}
			if _, err := tx4.ReadObject(a); err == nil {
				t.Fatal("freed object resurrected by recovery")
			}
		})
	}
}

// TestSDBlockSpillCorrectness drives the SD scheme with a one-page recovery
// buffer so block sets spill mid-transaction, and verifies durability.
func TestSDBlockSpillCorrectness(t *testing.T) {
	v := versions[1] // SD-ESM
	r := newRig(v, 64, page.Size)
	tx := mustBegin(t, r.cli)
	var oids []page.OID
	for i := 0; i < 6; i++ {
		if _, err := tx.NewPage(); err != nil {
			t.Fatal(err)
		}
		// Large objects so touching them all overflows one page of blocks.
		oid, err := tx.Allocate(4000)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, r.cli)
	payload := bytes.Repeat([]byte{0xCD}, 4000)
	for _, oid := range oids {
		if err := tx2.Write(oid, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.cli.Stats().RecbufSpills == 0 {
		t.Fatal("no block spills under a one-page recovery buffer")
	}
	r.srv.Crash()
	if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
		t.Fatal(err)
	}
	r.reconnect(v)
	tx3 := mustBegin(t, r.cli)
	for i, oid := range oids {
		got, err := tx3.ReadObject(oid)
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("object %d corrupted after spill+crash", i)
		}
	}
}

// TestLogRecordBatchingAcrossPages checks that a commit touching many pages
// ships log records packed into full log pages rather than one ship per
// page.
func TestLogRecordBatchingAcrossPages(t *testing.T) {
	r := newRig(versions[0], 128, 2<<20) // PD-ESM, roomy recovery buffer
	tx := mustBegin(t, r.cli)
	var oids []page.OID
	for i := 0; i < 50; i++ {
		tx.NewPage()
		oid, _ := tx.Allocate(64)
		oids = append(oids, oid)
	}
	tx.Commit()
	tx2 := mustBegin(t, r.cli)
	for _, oid := range oids {
		tx2.Write(oid, 0, []byte{1, 2, 3, 4})
	}
	before := r.cli.Stats()
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	after := r.cli.Stats()
	ships := after.LogPagesShipped - before.LogPagesShipped
	// 50 small records (~70 bytes each) fit in one 8 KB log page.
	if ships != 1 {
		t.Fatalf("%d log pages shipped for 50 small records, want 1", ships)
	}
}

// TestWriteSpanningBlocks checks SD copies every block a write overlaps.
func TestWriteSpanningBlocks(t *testing.T) {
	r := newRig(versions[1], 64, 1<<20) // SD
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(512)
	tx.Commit()
	tx2 := mustBegin(t, r.cli)
	// A 200-byte write spans 3-4 64-byte blocks.
	data := bytes.Repeat([]byte{7}, 200)
	if err := tx2.Write(oid, 30, data); err != nil {
		t.Fatal(err)
	}
	copies := r.cli.Stats().BlockCopies
	if copies < 4 || copies > 5 {
		t.Fatalf("block copies = %d for a 200-byte write at offset 30", copies)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := mustBegin(t, r.cli)
	got, _ := tx3.ReadObject(oid)
	if !bytes.Equal(got[30:230], data) {
		t.Fatal("spanning write lost data")
	}
	for _, b := range got[:30] {
		if b != 0 {
			t.Fatal("bytes before the write were disturbed")
		}
	}
}

// TestAbortDiscardsFreshPages ensures pages created by an aborted
// transaction do not leak into the next transaction's allocation target.
func TestAbortDiscardsFreshPages(t *testing.T) {
	r := newRig(versions[0], 64, 1<<20)
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(8)
	tx.Write(oid, 0, []byte("aborted!"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// The aborted OID must not be readable.
	tx2 := mustBegin(t, r.cli)
	if _, err := tx2.ReadObject(oid); err == nil {
		// The page may exist server-side as an orphan, but the object was
		// never committed; either an error or an all-zero read of a fresh
		// page is acceptable — what is NOT acceptable is seeing the data.
		got, _ := tx2.ReadObject(oid)
		if bytes.Equal(got, []byte("aborted!")) {
			t.Fatal("aborted write visible")
		}
	}
	// New allocations work fine.
	oid2, err := tx2.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	tx2.Write(oid2, 0, []byte("durable!"))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}
