package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wire"
)

// version is one of the paper's software versions (Table 3).
type version struct {
	name       string
	scheme     Scheme
	serverMode server.Mode
}

var versions = []version{
	{"PD-ESM", PD, server.ModeESM},
	{"SD-ESM", SD, server.ModeESM},
	{"SL-ESM", SL, server.ModeESM},
	{"PD-REDO", PD, server.ModeREDO},
	{"WPL", WPL, server.ModeWPL},
}

type rig struct {
	srv *server.Server
	cli *Client
}

func newRig(v version, clientPool int, recBytes int) *rig {
	srv := server.New(server.Config{
		Mode:            v.serverMode,
		PoolPages:       256,
		LogCapacity:     32 << 20,
		LockTimeout:     time.Second,
		CheckpointEvery: 1 << 30,
	})
	cli := New(Config{
		Scheme:         v.scheme,
		PoolPages:      clientPool,
		RecoveryBytes:  recBytes,
		ShipDirtyPages: v.serverMode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	return &rig{srv: srv, cli: cli}
}

// reconnect simulates a client restart: a fresh client against the same
// server (empty pool, no cached pages).
func (r *rig) reconnect(v version) {
	r.cli = New(Config{
		Scheme:         v.scheme,
		PoolPages:      r.cli.cfg.PoolPages,
		RecoveryBytes:  r.cli.cfg.RecoveryBytes,
		ShipDirtyPages: v.serverMode != server.ModeREDO,
	}, wire.NewDirect(r.srv, nil, nil))
}

func mustBegin(t *testing.T, c *Client) *Tx {
	t.Helper()
	tx, err := c.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestAllocateWriteReadCommit(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 64, 1<<20)
			tx := mustBegin(t, r.cli)
			oid, err := tx.Allocate(32)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Write(oid, 4, []byte("persistent!!")); err != nil {
				t.Fatal(err)
			}
			// Read back inside the same transaction.
			got := make([]byte, 12)
			if err := tx.Read(oid, 4, got); err != nil {
				t.Fatal(err)
			}
			if string(got) != "persistent!!" {
				t.Fatalf("in-txn read: %q", got)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Read back in a new transaction.
			tx2 := mustBegin(t, r.cli)
			got2 := make([]byte, 12)
			if err := tx2.Read(oid, 4, got2); err != nil {
				t.Fatal(err)
			}
			if string(got2) != "persistent!!" {
				t.Fatalf("next-txn read: %q", got2)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			// Read back from a brand-new client (server round trip).
			r.reconnect(v)
			tx3 := mustBegin(t, r.cli)
			got3 := make([]byte, 12)
			if err := tx3.Read(oid, 4, got3); err != nil {
				t.Fatal(err)
			}
			if string(got3) != "persistent!!" {
				t.Fatalf("fresh-client read: %q", got3)
			}
			tx3.Commit()
		})
	}
}

func TestCommittedSurvivesServerCrash(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 64, 1<<20)
			tx := mustBegin(t, r.cli)
			oid, _ := tx.Allocate(16)
			tx.Write(oid, 0, []byte("crash-proof data"))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Update it again so both page-image and update paths recover.
			tx2 := mustBegin(t, r.cli)
			tx2.Write(oid, 0, []byte("second version!!"))
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			r.srv.Crash()
			if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
				t.Fatal(err)
			}
			r.reconnect(v)
			tx3 := mustBegin(t, r.cli)
			got, err := tx3.ReadObject(oid)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "second version!!" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestUncommittedLostAtCrash(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 64, 1<<20)
			tx := mustBegin(t, r.cli)
			oid, _ := tx.Allocate(16)
			tx.Write(oid, 0, []byte("committed-value!"))
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx2 := mustBegin(t, r.cli)
			tx2.Write(oid, 0, []byte("doomed-update..."))
			// Force the update to reach the server without committing:
			// generate and ship everything a commit would, minus the commit.
			if err := tx2.emitLogForPage(oid.Page); err != nil {
				t.Fatal(err)
			}
			if err := tx2.flushLog(); err != nil {
				t.Fatal(err)
			}
			if r.cli.cfg.ShipDirtyPages {
				f := r.cli.pool.Peek(oid.Page)
				if err := r.cli.svc.ShipPage(tx2.tid, oid.Page, f.Bytes()); err != nil {
					t.Fatal(err)
				}
			}
			r.srv.Crash()
			if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
				t.Fatal(err)
			}
			r.reconnect(v)
			tx3 := mustBegin(t, r.cli)
			got, err := tx3.ReadObject(oid)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "committed-value!" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestAbortRestoresState(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 64, 1<<20)
			tx := mustBegin(t, r.cli)
			oid, _ := tx.Allocate(8)
			tx.Write(oid, 0, []byte("original"))
			tx.Commit()
			tx2 := mustBegin(t, r.cli)
			tx2.Write(oid, 0, []byte("mistake!"))
			if err := tx2.Abort(); err != nil {
				t.Fatal(err)
			}
			tx3 := mustBegin(t, r.cli)
			got, err := tx3.ReadObject(oid)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "original" {
				t.Fatalf("after abort: %q", got)
			}
		})
	}
}

func TestRepeatedUpdatesBatchIntoOneRecord(t *testing.T) {
	// The motivating OODBMS behaviour (§2): many updates to one object must
	// not generate one log record each. PD diffing batches them.
	r := newRig(versions[0], 64, 1<<20) // PD-ESM
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(8)
	tx.Commit()
	tx2 := mustBegin(t, r.cli)
	for i := 0; i < 100; i++ {
		if err := tx2.Write(oid, 0, []byte{byte(i), byte(i), 0, 0, 0, 0, 0, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := r.cli.Stats().LogRecords
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	recs := r.cli.Stats().LogRecords - before
	if recs != 1 {
		t.Fatalf("100 updates generated %d log records, want 1", recs)
	}
	if got := r.cli.Stats().Updates; got < 100 {
		t.Fatalf("updates = %d", got)
	}
}

func TestOneFaultPerPagePerTransaction(t *testing.T) {
	for _, v := range []version{versions[0], versions[4]} { // PD, WPL
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 64, 1<<20)
			tx := mustBegin(t, r.cli)
			oid, _ := tx.Allocate(8)
			tx.Commit()
			tx2 := mustBegin(t, r.cli)
			for i := 0; i < 50; i++ {
				tx2.Write(oid, 0, []byte{byte(i)})
			}
			tx2.Commit()
			// Fresh pages are pre-enabled, so only tx2's first write faults.
			if f := r.cli.Stats().Faults; f != 1 {
				t.Fatalf("faults = %d, want 1", f)
			}
			// Next transaction faults again (protection restored at commit).
			tx3 := mustBegin(t, r.cli)
			tx3.Write(oid, 0, []byte{99})
			tx3.Commit()
			if f := r.cli.Stats().Faults; f != 2 {
				t.Fatalf("faults = %d, want 2", f)
			}
		})
	}
}

func TestSDBlockCopiesAndNoFaults(t *testing.T) {
	r := newRig(versions[1], 64, 1<<20) // SD-ESM
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(256)
	tx.Commit()
	tx2 := mustBegin(t, r.cli)
	// Two writes in the same 64-byte block: one copy. One in another block.
	tx2.Write(oid, 0, []byte{1, 2, 3, 4})
	tx2.Write(oid, 8, []byte{5, 6, 7, 8})
	tx2.Write(oid, 200, []byte{9})
	tx2.Commit()
	st := r.cli.Stats()
	if st.Faults != 0 {
		t.Fatalf("SD faulted %d times", st.Faults)
	}
	// The object may straddle block boundaries, so allow 2 or 3, but the
	// same-block write must not re-copy.
	if st.BlockCopies < 2 || st.BlockCopies > 3 {
		t.Fatalf("block copies = %d", st.BlockCopies)
	}
	if st.PageCopies != 0 {
		t.Fatalf("SD made %d page copies", st.PageCopies)
	}
}

func TestSLLogsMoreThanSD(t *testing.T) {
	run := func(v version) int64 {
		r := newRig(v, 64, 1<<20)
		tx := mustBegin(t, r.cli)
		oid, _ := tx.Allocate(1024)
		tx.Commit()
		tx2 := mustBegin(t, r.cli)
		// Sparse single-byte updates: diffing pays off, whole blocks don't.
		for i := 0; i < 16; i++ {
			tx2.Write(oid, i*64, []byte{byte(i + 1)})
		}
		tx2.Commit()
		return r.cli.Stats().LogBytesShipped
	}
	sd := run(versions[1])
	sl := run(versions[2])
	if sl <= sd {
		t.Fatalf("SL shipped %d bytes, SD %d: SL should log more on sparse updates", sl, sd)
	}
}

func TestREDOShipsNoDirtyPages(t *testing.T) {
	r := newRig(versions[3], 64, 1<<20) // PD-REDO
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(16)
	tx.Write(oid, 0, []byte("redo at server!!"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := r.cli.Stats()
	if st.DirtyPagesShipped != 0 {
		t.Fatalf("REDO shipped %d dirty pages", st.DirtyPagesShipped)
	}
	if st.LogPagesShipped == 0 {
		t.Fatal("REDO shipped no log pages")
	}
	// The server's copy must still be current.
	r.reconnect(versions[3])
	tx2 := mustBegin(t, r.cli)
	got, _ := tx2.ReadObject(oid)
	if string(got) != "redo at server!!" {
		t.Fatalf("server copy stale: %q", got)
	}
}

func TestWPLGeneratesNoLogRecords(t *testing.T) {
	r := newRig(versions[4], 64, 1<<20)
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(16)
	tx.Write(oid, 0, []byte("whole page log!!"))
	tx.Commit()
	st := r.cli.Stats()
	if st.LogRecords != 0 || st.LogPagesShipped != 0 {
		t.Fatalf("WPL generated log records: %+v", st)
	}
	if st.DirtyPagesShipped == 0 {
		t.Fatal("WPL shipped no pages")
	}
	if st.PageCopies != 0 || st.BlockCopies != 0 {
		t.Fatal("WPL made recovery copies")
	}
}

func TestRecoveryBufferSpills(t *testing.T) {
	// Recovery buffer of 1 page (the minimum); updating 5 pages forces
	// spills mid-transaction, with log records generated early.
	v := versions[0] // PD-ESM
	r := newRig(v, 64, page.Size)
	tx := mustBegin(t, r.cli)
	var oids []page.OID
	for i := 0; i < 5; i++ {
		if _, err := tx.NewPage(); err != nil {
			t.Fatal(err)
		}
		oid, err := tx.Allocate(64)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, oid)
	}
	tx.Commit()
	tx2 := mustBegin(t, r.cli)
	for i, oid := range oids {
		if err := tx2.Write(oid, 0, []byte{byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.cli.Stats().RecbufSpills == 0 {
		t.Fatal("no spills with a one-page recovery buffer")
	}
	// Correctness across crash.
	r.srv.Crash()
	if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
		t.Fatal(err)
	}
	r.reconnect(v)
	tx3 := mustBegin(t, r.cli)
	for i, oid := range oids {
		got := make([]byte, 1)
		if err := tx3.Read(oid, 0, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("object %d: got %d", i, got[0])
		}
	}
}

func TestSpilledPageReupdatedStillCorrect(t *testing.T) {
	// Update page A, spill it (via pressure from page B), update A again:
	// both updates must survive, via two generations of log records.
	v := versions[0]
	r := newRig(v, 64, page.Size)
	tx := mustBegin(t, r.cli)
	tx.NewPage()
	a, _ := tx.Allocate(8)
	tx.NewPage()
	b, _ := tx.Allocate(8)
	tx.Commit()

	tx2 := mustBegin(t, r.cli)
	tx2.Write(a, 0, []byte{1, 1, 1, 1, 0, 0, 0, 0})
	tx2.Write(b, 0, []byte{2, 2, 2, 2, 0, 0, 0, 0}) // spills A
	tx2.Write(a, 4, []byte{3, 3, 3, 3})             // re-faults, re-copies A
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.cli.Stats().Faults < 3 {
		t.Fatalf("faults = %d, want ≥3 (A refaults after spill)", r.cli.Stats().Faults)
	}
	r.srv.Crash()
	if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
		t.Fatal(err)
	}
	r.reconnect(v)
	tx3 := mustBegin(t, r.cli)
	got, _ := tx3.ReadObject(a)
	if !bytes.Equal(got, []byte{1, 1, 1, 1, 3, 3, 3, 3}) {
		t.Fatalf("a = %v", got)
	}
	got, _ = tx3.ReadObject(b)
	if !bytes.Equal(got, []byte{2, 2, 2, 2, 0, 0, 0, 0}) {
		t.Fatalf("b = %v", got)
	}
}

func TestClientPoolEviction(t *testing.T) {
	// Client pool of 8 frames, 30 pages touched per transaction: evictions
	// mid-transaction must ship state correctly for every scheme.
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			r := newRig(v, 8, 1<<20)
			tx := mustBegin(t, r.cli)
			var oids []page.OID
			for i := 0; i < 30; i++ {
				if _, err := tx.NewPage(); err != nil {
					t.Fatal(err)
				}
				oid, err := tx.Allocate(128)
				if err != nil {
					t.Fatal(err)
				}
				oids = append(oids, oid)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx2 := mustBegin(t, r.cli)
			for i, oid := range oids {
				if err := tx2.Write(oid, 0, []byte{byte(i), byte(i >> 8)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
			if r.cli.Stats().Evictions == 0 {
				t.Fatal("no evictions with a tiny pool")
			}
			r.srv.Crash()
			if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
				t.Fatal(err)
			}
			r.reconnect(v)
			tx3 := mustBegin(t, r.cli)
			for i, oid := range oids {
				got := make([]byte, 2)
				if err := tx3.Read(oid, 0, got); err != nil {
					t.Fatalf("object %d: %v", i, err)
				}
				if got[0] != byte(i) || got[1] != byte(i>>8) {
					t.Fatalf("object %d: got %v", i, got)
				}
			}
		})
	}
}

func TestWriteOutsideTransactionFails(t *testing.T) {
	r := newRig(versions[0], 64, 1<<20)
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(8)
	tx.Commit()
	if err := tx.Write(oid, 0, []byte{1}); err == nil {
		t.Fatal("write on committed transaction succeeded")
	}
	if _, err := r.cli.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.cli.Begin(); err != ErrTxnActive {
		t.Fatalf("second Begin: %v", err)
	}
}

func TestBoundsChecks(t *testing.T) {
	r := newRig(versions[0], 64, 1<<20)
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(8)
	if err := tx.Write(oid, 4, []byte("12345")); err == nil {
		t.Fatal("overflow write accepted")
	}
	if err := tx.Read(oid, -1, make([]byte, 2)); err == nil {
		t.Fatal("negative offset read accepted")
	}
	if _, err := tx.ReadObject(page.OID{Page: oid.Page, Slot: 99}); err == nil {
		t.Fatal("bad slot accepted")
	}
}

func TestFreeAndReuse(t *testing.T) {
	r := newRig(versions[0], 64, 1<<20)
	tx := mustBegin(t, r.cli)
	oid, _ := tx.Allocate(64)
	tx.Write(oid, 0, []byte("gone"))
	tx.Commit()
	tx2 := mustBegin(t, r.cli)
	if err := tx2.Free(oid); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	tx3 := mustBegin(t, r.cli)
	if _, err := tx3.ReadObject(oid); err == nil {
		t.Fatal("freed object readable")
	}
	tx3.Commit()
}

// TestSchemeEquivalenceRandomWorkload runs an identical random workload of
// transactions (allocations, updates, commits, aborts, crashes) under every
// software version and checks that the final database contents match a plain
// in-memory model.
func TestSchemeEquivalenceRandomWorkload(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			r := newRig(v, 16, page.Size) // tiny pool and recbuf: all paths hot
			model := make(map[page.OID][]byte)

			// Seed objects.
			tx := mustBegin(t, r.cli)
			var oids []page.OID
			for i := 0; i < 40; i++ {
				size := 16 + rng.Intn(200)
				if rng.Intn(4) == 0 {
					tx.NewPage()
				}
				oid, err := tx.Allocate(size)
				if err != nil {
					t.Fatal(err)
				}
				oids = append(oids, oid)
				model[oid] = make([]byte, size)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			for round := 0; round < 15; round++ {
				tx := mustBegin(t, r.cli)
				pending := make(map[page.OID][]byte)
				for _, oid := range oids {
					if cur, ok := pending[oid]; !ok {
						cp := make([]byte, len(model[oid]))
						copy(cp, model[oid])
						pending[oid] = cp
						_ = cur
					}
				}
				nops := 1 + rng.Intn(20)
				for i := 0; i < nops; i++ {
					oid := oids[rng.Intn(len(oids))]
					buf := pending[oid]
					off := rng.Intn(len(buf))
					n := 1 + rng.Intn(len(buf)-off)
					data := make([]byte, n)
					rng.Read(data)
					if err := tx.Write(oid, off, data); err != nil {
						t.Fatalf("round %d write: %v", round, err)
					}
					copy(buf[off:], data)
				}
				switch rng.Intn(4) {
				case 0: // abort
					if err := tx.Abort(); err != nil {
						t.Fatal(err)
					}
				case 1: // commit then crash+restart
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					for oid, buf := range pending {
						model[oid] = buf
					}
					r.srv.Crash()
					if err := r.srv.NewSession(nil, nil).Restart(); err != nil {
						t.Fatal(err)
					}
					r.reconnect(v)
				default: // plain commit
					if err := tx.Commit(); err != nil {
						t.Fatal(err)
					}
					for oid, buf := range pending {
						model[oid] = buf
					}
				}
			}

			// Verify every object from a cold client.
			r.reconnect(v)
			vtx := mustBegin(t, r.cli)
			for _, oid := range oids {
				got, err := vtx.ReadObject(oid)
				if err != nil {
					t.Fatalf("%v: %v", oid, err)
				}
				if !bytes.Equal(got, model[oid]) {
					t.Fatalf("%v diverged from model", oid)
				}
			}
			vtx.Commit()
		})
	}
}

func TestStatsStringersAndErrors(t *testing.T) {
	for s, want := range map[Scheme]string{PD: "PD", SD: "SD", SL: "SL", WPL: "WPL", Scheme(9): "Scheme(9)"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", int(s), s.String())
		}
	}
	if fmt.Sprint(ErrTxnActive) == "" || fmt.Sprint(ErrNoTxn) == "" {
		t.Fatal("empty error strings")
	}
}
