package client

import (
	"fmt"

	"repro/internal/shard"
	"repro/internal/wire"
)

// NewSharded creates a client over a multi-shard store: backends[i] is shard
// i's transport (wire.NewDirect against a server configured with ShardID=i,
// ShardCount=len(backends), or a wire.Dial connection to its daemon). The
// retry policy, when enabled, wraps each shard's transport individually —
// retries belong below the router, so a re-sent Prepare or Decide reaches
// the same shard that missed it — and the router itself is returned for
// placement control (AllocPageOn) and recovery resolution (Recover).
func NewSharded(cfg Config, backends []shard.Backend) (*Client, *shard.Router, error) {
	wrapped := make([]shard.Backend, len(backends))
	for i, b := range backends {
		svc := wire.WithRetry(b, cfg.Retry)
		wb, ok := svc.(shard.Backend)
		if !ok {
			return nil, nil, fmt.Errorf("client: shard %d transport lacks the 2PC surface", i)
		}
		wrapped[i] = wb
	}
	cfg.Retry = wire.RetryPolicy{} // already applied per shard
	router := shard.NewRouter(wrapped)
	return New(cfg, router), router, nil
}
