package client

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wire"
)

// TestConcurrentClientsDisjointData runs several real (goroutine) clients
// against one server on disjoint data — the paper's no-conflict setup — and
// checks isolation and durability across a crash.
func TestConcurrentClientsDisjointData(t *testing.T) {
	for _, v := range versions {
		t.Run(v.name, func(t *testing.T) {
			srv := server.New(server.Config{
				Mode:            v.serverMode,
				PoolPages:       256,
				LogCapacity:     64 << 20,
				LockTimeout:     2 * time.Second,
				CheckpointEvery: 16,
			})
			const nClients = 4
			const nTxns = 8
			oids := make([][]page.OID, nClients)
			var wg sync.WaitGroup
			errs := make([]error, nClients)
			for c := 0; c < nClients; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					cli := New(Config{
						Scheme:         v.scheme,
						PoolPages:      32,
						RecoveryBytes:  1 << 20,
						ShipDirtyPages: v.serverMode != server.ModeREDO,
					}, wire.NewDirect(srv, nil, nil))
					tx, err := cli.Begin()
					if err != nil {
						errs[c] = err
						return
					}
					for i := 0; i < 5; i++ {
						if _, err := tx.NewPage(); err != nil {
							errs[c] = err
							return
						}
						oid, err := tx.Allocate(16)
						if err != nil {
							errs[c] = err
							return
						}
						oids[c] = append(oids[c], oid)
					}
					if err := tx.Commit(); err != nil {
						errs[c] = err
						return
					}
					for round := 0; round < nTxns; round++ {
						tx, err := cli.Begin()
						if err != nil {
							errs[c] = err
							return
						}
						for i, oid := range oids[c] {
							val := []byte(fmt.Sprintf("c%02dr%02di%02d!!!!!!!", c, round, i))
							if err := tx.Write(oid, 0, val); err != nil {
								errs[c] = err
								return
							}
						}
						if err := tx.Commit(); err != nil {
							errs[c] = err
							return
						}
					}
				}()
			}
			wg.Wait()
			for c, err := range errs {
				if err != nil {
					t.Fatalf("client %d: %v", c, err)
				}
			}
			srv.Crash()
			if err := srv.NewSession(nil, nil).Restart(); err != nil {
				t.Fatal(err)
			}
			// A fresh client verifies every object's final value.
			verifier := New(Config{
				Scheme:         PD,
				PoolPages:      64,
				ShipDirtyPages: v.serverMode != server.ModeREDO,
			}, wire.NewDirect(srv, nil, nil))
			vtx, err := verifier.Begin()
			if err != nil {
				t.Fatal(err)
			}
			for c := range oids {
				for i, oid := range oids[c] {
					got, err := vtx.ReadObject(oid)
					if err != nil {
						t.Fatalf("client %d object %d: %v", c, i, err)
					}
					want := []byte(fmt.Sprintf("c%02dr%02di%02d!!!!!!!", c, nTxns-1, i))
					if !bytes.Equal(got, want) {
						t.Fatalf("client %d object %d: %q, want %q", c, i, got, want)
					}
				}
			}
			vtx.Commit()
		})
	}
}

// TestTwoClientsContendOnSharedPage checks two-phase locking through the
// full client stack: a reader sees either the before or after value, never a
// torn intermediate, while a writer commits.
func TestTwoClientsContendOnSharedPage(t *testing.T) {
	srv := server.New(server.Config{
		Mode:            server.ModeESM,
		PoolPages:       64,
		LogCapacity:     32 << 20,
		LockTimeout:     5 * time.Second,
		CheckpointEvery: 1 << 30,
	})
	setup := New(Config{Scheme: PD, PoolPages: 32, ShipDirtyPages: true},
		wire.NewDirect(srv, nil, nil))
	tx, _ := setup.Begin()
	oid, _ := tx.Allocate(16)
	tx.Write(oid, 0, bytes.Repeat([]byte{'A'}, 16))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var torn bool
	var mu sync.Mutex
	// Reader client.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli := New(Config{Scheme: PD, PoolPages: 32, ShipDirtyPages: true},
			wire.NewDirect(srv, nil, nil))
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx, err := cli.Begin()
			if err != nil {
				continue
			}
			got, err := tx.ReadObject(oid)
			tx.Abort()
			if err != nil {
				continue
			}
			allA := bytes.Equal(got, bytes.Repeat([]byte{'A'}, 16))
			allB := bytes.Equal(got, bytes.Repeat([]byte{'B'}, 16))
			if !allA && !allB {
				mu.Lock()
				torn = true
				mu.Unlock()
				return
			}
		}
	}()
	// Writer client flips the object in two writes within one transaction.
	writer := New(Config{Scheme: PD, PoolPages: 32, ShipDirtyPages: true},
		wire.NewDirect(srv, nil, nil))
	for round := 0; round < 20; round++ {
		tx, err := writer.Begin()
		if err != nil {
			t.Fatal(err)
		}
		tx.Write(oid, 0, bytes.Repeat([]byte{'B'}, 8))
		tx.Write(oid, 8, bytes.Repeat([]byte{'B'}, 8))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		tx2, _ := writer.Begin()
		tx2.Write(oid, 0, bytes.Repeat([]byte{'A'}, 16))
		if err := tx2.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if torn {
		t.Fatal("reader observed a torn write under page locking")
	}
}
