package quickstore

// One testing.B benchmark per table and figure of the paper, plus the
// ablation benchmarks DESIGN.md §6 calls out. Each figure benchmark drives
// the same harness as cmd/oo7bench at a reduced scale (the full-scale runs
// are recorded in EXPERIMENTS.md; run `go run ./cmd/oo7bench -exp all` to
// regenerate them). Results are published as custom metrics: for the
// response-time figures the headline value is the slowest-vs-fastest system
// ratio at the highest client count, which is the paper's qualitative claim.
//
// A single scaled runner is shared across benchmarks so the suite stays
// fast; iterations beyond the first hit the group cache.

import (
	"fmt"
	"sync"
	"testing"

	iclient "repro/internal/client"
	"repro/internal/diff"
	"repro/internal/harness"
	"repro/internal/oo7"
	iserver "repro/internal/server"
)

var (
	benchOnce   sync.Once
	benchRunner *harness.Runner
)

func benchR() *harness.Runner {
	benchOnce.Do(func() {
		benchRunner = harness.NewRunner(harness.Options{
			Scale:   25,
			Clients: []int{1, 2, 3},
			Warm:    1,
			Measure: 1,
		})
	})
	return benchRunner
}

// benchFigure regenerates figure n once per b.N and reports the spread
// between the best and worst system at the top client count.
func benchFigure(b *testing.B, n int) {
	b.Helper()
	r := benchR()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure(n); err != nil {
			b.Fatal(err)
		}
	}
	cells := r.Cells(n)
	top := 0
	var best, worst float64
	for _, c := range cells {
		if c.Clients > top {
			top = c.Clients
		}
	}
	for _, c := range cells {
		if c.Clients != top {
			continue
		}
		rt := c.RespTime.Seconds()
		if best == 0 || rt < best {
			best = rt
		}
		if rt > worst {
			worst = rt
		}
	}
	if best > 0 {
		b.ReportMetric(worst/best, "worst/best-rt")
	}
}

func BenchmarkTable2DatabaseSizes(b *testing.B) {
	r := benchR()
	for i := 0; i < b.N; i++ {
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04_T2ASmall(b *testing.B)                 { benchFigure(b, 4) }
func BenchmarkFig05_T2ASmallThroughput(b *testing.B)       { benchFigure(b, 5) }
func BenchmarkFig06_T2BSmall(b *testing.B)                 { benchFigure(b, 6) }
func BenchmarkFig07_T2BSmallThroughput(b *testing.B)       { benchFigure(b, 7) }
func BenchmarkFig08_T2CSmall(b *testing.B)                 { benchFigure(b, 8) }
func BenchmarkFig10_T2AConstrained(b *testing.B)           { benchFigure(b, 10) }
func BenchmarkFig11_T2AConstrainedThroughput(b *testing.B) { benchFigure(b, 11) }
func BenchmarkFig12_T2BConstrained(b *testing.B)           { benchFigure(b, 12) }
func BenchmarkFig13_T2BConstrainedThroughput(b *testing.B) { benchFigure(b, 13) }
func BenchmarkFig15_T2ABig(b *testing.B)                   { benchFigure(b, 15) }
func BenchmarkFig16_T2ABigThroughput(b *testing.B)         { benchFigure(b, 16) }
func BenchmarkFig17_T2BBig(b *testing.B)                   { benchFigure(b, 17) }
func BenchmarkFig18_T2BBigThroughput(b *testing.B)         { benchFigure(b, 18) }

// BenchmarkFig09_ClientWrites reports the T2A per-transaction page shipment
// counts that Figure 9 plots: the WPL-to-REDO ratio is the paper's headline
// (435 vs 5 pages).
func BenchmarkFig09_ClientWrites(b *testing.B) {
	r := benchR()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure(9); err != nil {
			b.Fatal(err)
		}
	}
	var wpl, redo float64
	for _, c := range r.Cells(9) {
		if c.Clients != 1 {
			continue
		}
		switch c.System {
		case "WPL":
			if c.TotalPages > wpl {
				wpl = c.TotalPages
			}
		case "PD-REDO":
			if redo == 0 || c.TotalPages < redo {
				redo = c.TotalPages
			}
		}
	}
	if redo > 0 {
		b.ReportMetric(wpl/redo, "wpl/redo-pages")
	}
}

// BenchmarkFig14_ClientWritesConstrained reports the constrained-cache write
// counts (Figure 14): PD generates a multiple of SD's log pages.
func BenchmarkFig14_ClientWritesConstrained(b *testing.B) {
	r := benchR()
	for i := 0; i < b.N; i++ {
		if _, err := r.Figure(14); err != nil {
			b.Fatal(err)
		}
	}
	var pd, sd float64
	for _, c := range r.Cells(14) {
		if c.Clients != 1 {
			continue
		}
		switch c.System {
		case "PD-ESM":
			if c.LogPages > pd {
				pd = c.LogPages
			}
		case "SD-ESM":
			if sd == 0 || c.LogPages > sd {
				sd = c.LogPages
			}
		}
	}
	if sd > 0 {
		b.ReportMetric(pd/sd, "pd/sd-logpages")
	}
}

// --- ablations (DESIGN.md §6) ------------------------------------------------

// BenchmarkAblation_RegionCombining measures the log-traffic saving of the
// paper's 2*gap > H combining rule against naive one-record-per-region
// logging, on objects with paper-like sparse updates.
func BenchmarkAblation_RegionCombining(b *testing.B) {
	before := make([]byte, 2048)
	after := make([]byte, 2048)
	copy(after, before)
	// Updates at word 0 and word 2 of each 100-byte "object", as in §3.2.2.
	for off := 0; off+100 <= len(after); off += 100 {
		after[off] ^= 0xff
		after[off+8] ^= 0xff
	}
	var combined, naive int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		combined = diff.LogBytes(diff.Regions(before, after), diff.HeaderSize)
		naive = diff.LogBytes(diff.RawRegions(before, after), diff.HeaderSize)
	}
	b.ReportMetric(float64(naive)/float64(combined), "naive/combined-bytes")
}

// BenchmarkAblation_BlockSize sweeps the SD block size (the paper tried
// 8–64 bytes, §3.3) on the constrained T2A workload and reports log pages
// per transaction for each size.
func BenchmarkAblation_BlockSize(b *testing.B) {
	for _, bs := range []int{8, 16, 32, 64} {
		bs := bs
		b.Run(fmt.Sprintf("block%d", bs), func(b *testing.B) {
			var logPages float64
			for i := 0; i < b.N; i++ {
				cells, err := harness.RunCustom(harness.SystemSpec{
					Name: "SD", Scheme: iclient.SD, Mode: iserver.ModeESM,
					PoolMB: 7.5, RecMB: 0.5, BlockSize: bs,
				}, oo7.SmallConfig(), oo7.T2A, harness.Options{
					Scale: 25, Clients: []int{1}, Warm: 1, Measure: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				logPages = cells[0].LogPages
			}
			b.ReportMetric(logPages, "logpages/txn")
		})
	}
}

// BenchmarkAblation_RecoveryBufferSplit contrasts the paper's two big-DB
// memory splits (8+4 vs 11.5+0.5 MB) on a scaled big database.
func BenchmarkAblation_RecoveryBufferSplit(b *testing.B) {
	for _, split := range []struct {
		name      string
		pool, rec float64
	}{
		{"8+4", 8, 4},
		{"11.5+0.5", 11.5, 0.5},
	} {
		split := split
		b.Run(split.name, func(b *testing.B) {
			var rt float64
			for i := 0; i < b.N; i++ {
				cells, err := harness.RunCustom(harness.SystemSpec{
					Name: "PD", Scheme: iclient.PD, Mode: iserver.ModeESM,
					PoolMB: split.pool, RecMB: split.rec,
				}, oo7.BigConfig(), oo7.T2A, harness.Options{
					Scale: 25, Clients: []int{2}, Warm: 1, Measure: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rt = cells[0].RespTime.Seconds()
			}
			b.ReportMetric(rt, "resp-s")
		})
	}
}

// BenchmarkAblation_AdaptiveSplit measures the §7 future-work policy against
// a deliberately bad static split on a spill-heavy workload.
func BenchmarkAblation_AdaptiveSplit(b *testing.B) {
	for _, mode := range []struct {
		name     string
		adaptive bool
	}{
		{"static", false},
		{"adaptive", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var spills float64
			for i := 0; i < b.N; i++ {
				cells, err := harness.RunCustom(harness.SystemSpec{
					Name: "PD", Scheme: iclient.PD, Mode: iserver.ModeESM,
					PoolMB: 11.9, RecMB: 0.1, // pathological static split
					Adaptive: mode.adaptive,
				}, oo7.SmallConfig(), oo7.T2A, harness.Options{
					Scale: 25, Clients: []int{1}, Warm: 2, Measure: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				spills = cells[0].Spills
			}
			b.ReportMetric(spills, "spills/txn")
		})
	}
}

// BenchmarkDiffPage is a microbenchmark of the core diffing primitive on a
// full 8 KB page with sparse updates.
func BenchmarkDiffPage(b *testing.B) {
	before := make([]byte, PageSize)
	after := make([]byte, PageSize)
	copy(after, before)
	for i := 0; i < 20; i++ {
		after[i*400+16] ^= 0x1
	}
	b.SetBytes(int64(PageSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diff.Regions(before, after)
	}
}

// BenchmarkCommitPath measures the end-to-end client commit (allocate,
// update, diff, ship, force) in real mode for each scheme.
func BenchmarkCommitPath(b *testing.B) {
	for _, sc := range []Scheme{PDESM, SDESM, PDREDO, WPL} {
		sc := sc
		b.Run(sc.String(), func(b *testing.B) {
			st, err := Open(Options{Scheme: sc, LogMB: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var oid OID
			st.Update(func(tx *Tx) error {
				oid, _ = tx.Allocate(128)
				return nil
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := st.Update(func(tx *Tx) error {
					return tx.Write(oid, 0, []byte{byte(i), byte(i >> 8)})
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
