// Package quickstore is a client-server persistent object store for Go,
// reproducing QuickStore [White94] and the crash-recovery study of White &
// DeWitt (SIGMOD 1995, "Implementing Crash Recovery in QuickStore: A
// Performance Study").
//
// Objects are untyped byte records up to ~8 KB, addressed by stable OIDs and
// clustered onto 8 KB pages. Transactions give full ACID semantics: updates
// are isolated by page locks, batched into recovery log records at commit
// time by one of four selectable recovery schemes, and survive server
// crashes via write-ahead logging (or whole-page logging) and restart
// recovery.
//
// # Quick start
//
//	store, _ := quickstore.Open(quickstore.Options{})   // embedded, in-memory
//	defer store.Close()
//
//	var oid quickstore.OID
//	_ = store.Update(func(tx *quickstore.Tx) error {
//		oid, _ = tx.Allocate(64)
//		return tx.Write(oid, 0, []byte("hello, crash recovery"))
//	})
//
//	_ = store.View(func(tx *quickstore.Tx) error {
//		data, _ := tx.ReadObject(oid)
//		fmt.Printf("%s\n", data)
//		return nil
//	})
//
// A store can be embedded (Open, one process) or remote (Dial, speaking to a
// quickstored server over TCP). The recovery scheme is chosen at open time;
// see Scheme. The paper's performance study of these schemes is reproduced
// by cmd/oo7bench.
package quickstore

import (
	"errors"
	"fmt"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/server"
	"repro/internal/wire"
)

// OID identifies a persistent object.
type OID = page.OID

// NilOID is the null object reference.
var NilOID = page.NilOID

// PageSize is the store's page size; objects cannot exceed
// PageSize minus a small header (MaxObjectSize).
const PageSize = page.Size

// MaxObjectSize is the largest allocatable object.
const MaxObjectSize = page.MaxObjectSize

// OIDSize is the encoded size of an OID, for storing persistent references
// inside objects.
const OIDSize = page.OIDSize

// EncodeOID writes oid into dst (at least OIDSize bytes), for embedding
// persistent references in object data.
func EncodeOID(dst []byte, oid OID) { page.EncodeOID(dst, oid) }

// DecodeOID reads a reference written by EncodeOID.
func DecodeOID(src []byte) OID { return page.DecodeOID(src) }

// Scheme selects how updates are captured for crash recovery (Table 3 of
// the paper).
type Scheme int

// Recovery schemes.
const (
	// PDESM is page differencing over ARIES-style logging: the best
	// all-rounder in the paper when client memory is plentiful.
	PDESM Scheme = iota
	// SDESM is sub-page (64-byte block) differencing: wins when the memory
	// available for recovery copies is very tight.
	SDESM
	// SLESM is sub-page logging without diffing (for comparison; strictly
	// more log traffic than SDESM).
	SLESM
	// PDREDO is page differencing with redo-at-server: clients never ship
	// dirty pages. Simple and fast until the server becomes the bottleneck.
	PDREDO
	// WPL is whole-page logging, the ObjectStore approach: no client-side
	// recovery work at all, entire dirty pages logged at the server.
	WPL
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case PDESM:
		return "PD-ESM"
	case SDESM:
		return "SD-ESM"
	case SLESM:
		return "SL-ESM"
	case PDREDO:
		return "PD-REDO"
	case WPL:
		return "WPL"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

func (s Scheme) split() (client.Scheme, server.Mode, error) {
	switch s {
	case PDESM:
		return client.PD, server.ModeESM, nil
	case SDESM:
		return client.SD, server.ModeESM, nil
	case SLESM:
		return client.SL, server.ModeESM, nil
	case PDREDO:
		return client.PD, server.ModeREDO, nil
	case WPL:
		return client.WPL, server.ModeWPL, nil
	default:
		return 0, 0, fmt.Errorf("quickstore: unknown scheme %v", s)
	}
}

// ServerMode returns the server-side recovery mode for the scheme, for use
// with cmd/quickstored.
func (s Scheme) ServerMode() (server.Mode, error) {
	_, m, err := s.split()
	return m, err
}

// Options configures Open.
type Options struct {
	// Scheme is the recovery scheme (default PDESM).
	Scheme Scheme
	// Path, when set, backs the data volume with a file that survives
	// process restarts; empty means in-memory.
	Path string
	// ClientCacheMB is the client buffer pool size (default 8).
	ClientCacheMB int
	// RecoveryBufferMB is the recovery buffer for the diffing schemes
	// (default 4; ignored for WPL).
	RecoveryBufferMB int
	// ServerCacheMB is the embedded server's buffer pool (default 36).
	ServerCacheMB int
	// LogMB is the transaction log capacity (default 256).
	LogMB int
}

// Store is an open QuickStore: either an embedded server plus client, or a
// client connected to a remote server.
type Store struct {
	cli    *client.Client
	srv    *server.Server // nil for remote stores
	store  disk.Store     // nil for remote stores
	tcp    *wire.TCPClient
	scheme Scheme
	opts   Options // defaulted options, for rebuilding the client after Crash
}

// ErrTxDone is returned when a transaction is used after Commit or Abort.
var ErrTxDone = client.ErrNoTxn

// Open creates or opens an embedded store. With Options.Path set, an
// existing volume is recovered (restart recovery runs if the previous
// process crashed).
func Open(o Options) (*Store, error) {
	cs, mode, err := o.Scheme.split()
	if err != nil {
		return nil, err
	}
	if o.ClientCacheMB == 0 {
		o.ClientCacheMB = 8
	}
	if o.RecoveryBufferMB == 0 {
		o.RecoveryBufferMB = 4
	}
	if o.ServerCacheMB == 0 {
		o.ServerCacheMB = 36
	}
	if o.LogMB == 0 {
		o.LogMB = 256
	}
	var vol disk.Store
	existing := false
	if o.Path != "" {
		fs, err := disk.OpenFileStore(o.Path)
		if err != nil {
			return nil, err
		}
		existing = fs.Pages() > 0
		vol = fs
	} else {
		vol = disk.NewMemStore()
	}
	srv := server.New(server.Config{
		Mode:        mode,
		Store:       vol,
		PoolPages:   o.ServerCacheMB << 20 / PageSize,
		LogCapacity: o.LogMB << 20,
	})
	if existing {
		// The volume may hold state from a crashed process; note that the
		// in-memory log does not survive process exit, so recovery here
		// replays only what the superblock's checkpoint reached. See
		// DESIGN.md on durability scope.
		if err := srv.NewSession(nil, nil).Restart(); err != nil {
			return nil, fmt.Errorf("quickstore: recovering %s: %w", o.Path, err)
		}
	}
	cli := client.New(client.Config{
		Scheme:         cs,
		PoolPages:      o.ClientCacheMB << 20 / PageSize,
		RecoveryBytes:  o.RecoveryBufferMB << 20,
		ShipDirtyPages: mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
	return &Store{cli: cli, srv: srv, store: vol, scheme: o.Scheme, opts: o}, nil
}

// Dial connects to a quickstored server. The scheme must match the server's
// recovery mode (PDESM/SDESM/SLESM against an ESM server, PDREDO against a
// REDO server, WPL against a WPL server).
func Dial(addr string, o Options) (*Store, error) {
	cs, mode, err := o.Scheme.split()
	if err != nil {
		return nil, err
	}
	if o.ClientCacheMB == 0 {
		o.ClientCacheMB = 8
	}
	if o.RecoveryBufferMB == 0 {
		o.RecoveryBufferMB = 4
	}
	tcp, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	cli := client.New(client.Config{
		Scheme:         cs,
		PoolPages:      o.ClientCacheMB << 20 / PageSize,
		RecoveryBytes:  o.RecoveryBufferMB << 20,
		ShipDirtyPages: mode != server.ModeREDO,
	}, tcp)
	return &Store{cli: cli, tcp: tcp, scheme: o.Scheme, opts: o}, nil
}

// Scheme returns the store's recovery scheme.
func (s *Store) Scheme() Scheme { return s.scheme }

// Close releases resources. Embedded stores flush buffered pages to the
// volume first so a file-backed store reopens without recovery work.
func (s *Store) Close() error {
	if s.tcp != nil {
		return s.tcp.Close()
	}
	sn := s.srv.NewSession(nil, nil)
	if err := sn.Checkpoint(); err != nil {
		return err
	}
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// Tx is an open transaction.
type Tx struct {
	inner *client.Tx
}

// Begin starts a transaction. At most one transaction may be open per Store.
func (s *Store) Begin() (*Tx, error) {
	inner, err := s.cli.Begin()
	if err != nil {
		return nil, err
	}
	return &Tx{inner: inner}, nil
}

// Update runs fn in a transaction, committing on nil and rolling back on
// error or panic.
func (s *Store) Update(fn func(*Tx) error) error {
	tx, err := s.Begin()
	if err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		done = true
		if aerr := tx.Abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	done = true
	return tx.Commit()
}

// View runs fn in a transaction that is rolled back afterwards; use it for
// read-only work (QuickStore has no read-only optimization beyond not
// logging, so View is Update that never commits).
func (s *Store) View(fn func(*Tx) error) error {
	tx, err := s.Begin()
	if err != nil {
		return err
	}
	defer tx.Abort()
	return fn(tx)
}

// Crash simulates a server crash on an embedded store: all volatile server
// state is lost and restart recovery runs. Committed transactions survive;
// anything uncommitted is rolled back. The client's cache is discarded.
// Remote stores return an error (crash the server process instead).
func (s *Store) Crash() error {
	if s.srv == nil {
		return errors.New("quickstore: Crash on a remote store")
	}
	s.srv.Crash()
	if err := s.srv.NewSession(nil, nil).Restart(); err != nil {
		return err
	}
	// The client's cached pages and any open transaction are gone.
	cs, mode, _ := s.scheme.split()
	s.cli = client.New(client.Config{
		Scheme:         cs,
		PoolPages:      s.opts.ClientCacheMB << 20 / PageSize,
		RecoveryBytes:  s.opts.RecoveryBufferMB << 20,
		ShipDirtyPages: mode != server.ModeREDO,
	}, wire.NewDirect(s.srv, nil, nil))
	return nil
}

// Stats reports operation counts since the store was opened.
type Stats struct {
	Commits           int64
	Aborts            int64
	Faults            int64 // write-protection faults handled
	Updates           int64
	LogRecords        int64
	LogBytesShipped   int64
	DirtyPagesShipped int64
	PagesFetched      int64
}

// Stats returns a snapshot of client-side counters.
func (s *Store) Stats() Stats {
	c := s.cli.Stats()
	return Stats{
		Commits:           c.Commits,
		Aborts:            c.Aborts,
		Faults:            c.Faults,
		Updates:           c.Updates,
		LogRecords:        c.LogRecords,
		LogBytesShipped:   c.LogBytesShipped,
		DirtyPagesShipped: c.DirtyPagesShipped,
		PagesFetched:      c.PagesFetched,
	}
}

// --- transaction operations -------------------------------------------------

// Allocate creates a zero-filled object of the given size and returns its OID.
func (t *Tx) Allocate(size int) (OID, error) { return t.inner.Allocate(size) }

// AllocateOnFreshPage starts a new page and allocates on it, giving the
// caller clustering control (objects allocated afterwards share the page
// until it fills).
func (t *Tx) AllocateOnFreshPage(size int) (OID, error) {
	if _, err := t.inner.NewPage(); err != nil {
		return NilOID, err
	}
	return t.inner.Allocate(size)
}

// Free releases an object. Its OID may be reused by later allocations.
func (t *Tx) Free(oid OID) error { return t.inner.Free(oid) }

// Size returns an object's size.
func (t *Tx) Size(oid OID) (int, error) { return t.inner.Size(oid) }

// Read copies len(dst) bytes from the object at offset off.
func (t *Tx) Read(oid OID, off int, dst []byte) error { return t.inner.Read(oid, off, dst) }

// ReadObject returns a copy of the object's contents.
func (t *Tx) ReadObject(oid OID) ([]byte, error) { return t.inner.ReadObject(oid) }

// Write stores data into the object at offset off, routed through the
// store's recovery scheme.
func (t *Tx) Write(oid OID, off int, data []byte) error { return t.inner.Write(oid, off, data) }

// Commit makes the transaction durable.
func (t *Tx) Commit() error { return t.inner.Commit() }

// Abort rolls the transaction back.
func (t *Tx) Abort() error { return t.inner.Abort() }
