// Command oo7bench regenerates the paper's tables and figures.
//
// Usage:
//
//	oo7bench -exp fig4            # one figure
//	oo7bench -exp table2          # a table
//	oo7bench -exp all             # everything (EXPERIMENTS.md source)
//	oo7bench -exp fig15 -scale 4  # big-database figure at 1/4 size
//	oo7bench -exp fig4 -diag      # include resource-utilization diagnostics
//
// -scale divides the database size and client memory budgets; 1 is the
// paper's full configuration. The relative shapes are stable across scales;
// EXPERIMENTS.md records full-scale results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|fig4..fig18|all")
		scale   = flag.Int("scale", 1, "divide database size and client memory by this factor")
		clients = flag.String("clients", "1,2,3,4,5", "comma-separated client counts")
		measure = flag.Int("measure", 2, "measured traversals per client")
		warm    = flag.Int("warm", 1, "warm-up traversals per client")
		seed    = flag.Int64("seed", 7, "database generation seed")
		diag    = flag.Bool("diag", false, "print resource utilizations per cell")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	var cl []int
	for _, part := range strings.Split(*clients, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "oo7bench: bad -clients %q\n", *clients)
			os.Exit(2)
		}
		cl = append(cl, n)
	}
	r := harness.NewRunner(harness.Options{
		Scale:   *scale,
		Clients: cl,
		Measure: *measure,
		Warm:    *warm,
		Seed:    *seed,
	})
	if err := run(r, *exp, *diag, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "oo7bench: %v\n", err)
		os.Exit(1)
	}
}

func run(r *harness.Runner, exp string, diag, csv bool) error {
	//qslint:allow determinism: wall-clock elapsed banner for the operator; the CSV mode the sweeps consume omits it
	start := time.Now()
	defer func() {
		if !csv {
			//qslint:allow determinism: wall-clock elapsed banner for the operator; the CSV mode the sweeps consume omits it
			fmt.Printf("(elapsed %v, scale %d)\n", time.Since(start).Round(time.Millisecond), r.Options().Scale)
		}
	}()
	show := func(t *harness.Table, err error) error {
		if err != nil {
			return err
		}
		if csv {
			fmt.Print(t.CSV())
			fmt.Println()
		} else {
			fmt.Println(t.Format())
		}
		return nil
	}
	switch {
	case exp == "table1":
		return show(harness.Table1(), nil)
	case exp == "table2":
		return show(r.Table2())
	case exp == "table3":
		return show(harness.Table3(), nil)
	case exp == "all":
		if err := show(harness.Table1(), nil); err != nil {
			return err
		}
		if err := show(r.Table2()); err != nil {
			return err
		}
		if err := show(harness.Table3(), nil); err != nil {
			return err
		}
		for _, id := range harness.FigureIDs() {
			if err := show(r.Figure(id)); err != nil {
				return err
			}
			if diag {
				printDiag(r, id)
			}
		}
		return nil
	case strings.HasPrefix(exp, "fig"):
		n, err := strconv.Atoi(strings.TrimPrefix(exp, "fig"))
		if err != nil {
			return fmt.Errorf("bad experiment %q", exp)
		}
		if err := show(r.Figure(n)); err != nil {
			return err
		}
		if diag {
			printDiag(r, n)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func printDiag(r *harness.Runner, fig int) {
	for _, c := range r.Cells(fig) {
		fmt.Printf("  %-11s n=%d rt=%6.1fs tpm=%6.2f log=%6.1f total=%6.1f spills=%5.1f fetch=%6.1f net=%3.0f%% logd=%3.0f%% datad=%3.0f%% scpu=%3.0f%%\n",
			c.System, c.Clients, c.RespTime.Seconds(), c.TPM, c.LogPages, c.TotalPages,
			c.Spills, c.Fetches, 100*c.NetUtil, 100*c.LogUtil, 100*c.DataUtil, 100*c.ServerUtil)
	}
	fmt.Println()
}
