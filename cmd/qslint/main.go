// Command qslint runs the project's static invariant suite (internal/lint)
// over the whole module: latch order (DESIGN.md §S9), WAL write-ahead and
// layering discipline, sweep determinism, stable-storage error handling,
// and the dataflow protocol analyzers added with DESIGN.md §15
// (force-before-ack, latch-io, goroutine-lifecycle, sentinel-errors).
// It exits nonzero if any unsuppressed, non-baselined diagnostic remains,
// so `make lint` (part of `make check`) gates every change.
//
// Usage:
//
//	qslint [-json] [-tests] [-baseline file] [-write-baseline file] [dir]
//
// dir defaults to "." and may be anywhere inside the module.
//
// -baseline applies a checked-in suppression baseline: findings covered by
// it are accepted debt, findings not covered fail the build, and baseline
// entries that no longer match anything fail too (stale entries must be
// deleted when their debt is paid). -write-baseline regenerates the file
// from the current findings. -tests additionally loads internal/harness's
// in-package test files, so the determinism analyzer covers the sweep
// repro helpers that must replay exactly like the sweeps.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// harnessPath is the one package whose _test.go files carry sweep-replay
// invariants worth linting (-tests).
const harnessPath = "repro/internal/harness"

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (machine-readable)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	baseline := flag.String("baseline", "", "suppression baseline file: fail only on findings it does not cover, and on stale entries")
	writeBaseline := flag.String("write-baseline", "", "write the current findings to this baseline file and exit")
	tests := flag.Bool("tests", false, "also lint internal/harness's in-package test files")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-19s %s\n", a.Name(), a.Doc())
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	m, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
		os.Exit(2)
	}
	if *tests {
		m.IncludeTests(harnessPath)
	}
	pkgs, err := m.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(m, pkgs, lint.All())

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "qslint: wrote %d baseline entr%s to %s\n",
			len(diags), plural(len(diags), "y", "ies"), *writeBaseline)
		return
	}

	var stale []lint.BaselineEntry
	if *baseline != "" {
		entries, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
			os.Exit(2)
		}
		diags, stale = lint.ApplyBaseline(entries, diags)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "qslint: stale baseline entry (fixed? delete it): [%s] %s: %s\n",
			e.Analyzer, e.File, e.Message)
	}
	if len(diags) > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "qslint: %d finding(s), %d stale baseline entr%s\n",
			len(diags), len(stale), plural(len(stale), "y", "ies"))
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
