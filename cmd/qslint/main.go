// Command qslint runs the project's static invariant suite (internal/lint)
// over the whole module: latch order (DESIGN.md §S9), WAL write-ahead and
// layering discipline, sweep determinism, and stable-storage error handling.
// It exits nonzero if any unsuppressed diagnostic remains, so `make lint`
// (part of `make check`) gates every change.
//
// Usage:
//
//	qslint [-json] [dir]
//
// dir defaults to "." and may be anywhere inside the module.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (machine-readable)")
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-17s %s\n", a.Name(), a.Doc())
		}
		return
	}

	dir := "."
	if flag.NArg() > 0 {
		dir = flag.Arg(0)
	}
	m, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := m.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(m, pkgs, lint.All())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "qslint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "qslint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
