// Command quickstored runs the storage server as a standalone daemon,
// serving QuickStore clients over TCP (see quickstore.Dial and cmd/qsctl).
//
//	quickstored -addr :7447 -mode esm -data /var/lib/quickstore/vol
//
// The recovery mode must match the scheme clients connect with: esm for
// PD-ESM/SD-ESM/SL-ESM, redo for PD-REDO, wpl for WPL.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/page"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":7447", "listen address")
		mode      = flag.String("mode", "esm", "recovery mode: esm|redo|wpl")
		data      = flag.String("data", "", "data volume file (empty = in-memory)")
		cacheMB   = flag.Int("cache", 36, "server buffer pool (MB)")
		logMB     = flag.Int("log", 256, "transaction log capacity (MB)")
		gcDelay   = flag.Duration("gcdelay", 0, "group-commit max batch delay (0 = batch without delay, <0 = disable group commit)")
		shards    = flag.Int("shards", 0, "buffer pool latch shards (0 = default)")
		shardID   = flag.Int("shard-id", 0, "this daemon's shard index in a multi-volume cluster (with -shard-count)")
		shardN    = flag.Int("shard-count", 1, "total shards in the cluster: page ids and transaction ids are allocated in this daemon's residue class, and cross-shard commits run two-phase (see qsctl 2pc-status)")
		serial    = flag.Bool("serialize", false, "serialize all sessions on one mutex (pre-group-commit behaviour)")
		wplSync   = flag.Bool("wpl-sync-install", false, "wpl: install committed pages inline at commit instead of in the background")
		archDir   = flag.String("archive-dir", "", "archive log segments and backups into this directory (empty = no archiving)")
		archInt   = flag.Duration("archive-every", 5*time.Second, "background archiver drain interval")
		cksum     = flag.Bool("checksum", true, "verify per-page checksum envelopes on every read (the volume must have been written with checksums)")
		scrubInt  = flag.Duration("scrub-every", 0, "background scrubber tick (0 = no scrubbing; requires -checksum)")
		scrubN    = flag.Int("scrub-pages", 0, "pages verified per scrubber tick (0 = default)")
		fuzzy     = flag.Bool("fuzzy-ckpt", false, "fuzzy checkpoints: log the dirty page table instead of flushing it (pair with -cleaner-every)")
		cleanInt  = flag.Duration("cleaner-every", 0, "background page cleaner tick (0 = no cleaner)")
		cleanN    = flag.Int("cleaner-batch", 0, "pages written per cleaner tick (0 = default)")
		dirtyTgt  = flag.Int("dirty-target", 0, "dirty-page count the cleaner drains toward; commits apply soft backpressure past 2x (0 = clean whenever dirty pages exist)")
		replShip  = flag.Bool("repl", false, "ship the WAL to a hot standby (serves repl-fetch; start the standby with -replica-of)")
		replAck   = flag.String("repl-ack", "async", "replication ack mode: async|semi-sync (semi-sync blocks each commit until the standby applied it, with a timeout)")
		replTO    = flag.Duration("repl-ack-timeout", 500*time.Millisecond, "semi-sync ack wait bound; a timeout degrades that commit to async")
		replicaOf = flag.String("replica-of", "", "run as a hot standby of the primary at this address: read-only until promoted (qsctl promote); with -archive-dir, cold-bootstrap from that archive copy first")
	)
	flag.Parse()

	var m server.Mode
	switch *mode {
	case "esm":
		m = server.ModeESM
	case "redo":
		m = server.ModeREDO
	case "wpl":
		m = server.ModeWPL
	default:
		fmt.Fprintf(os.Stderr, "quickstored: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if *fuzzy && m == server.ModeWPL {
		log.Printf("quickstored: note: WPL checkpoints never flush pages; -fuzzy-ckpt only changes the checkpoint record contents")
	}
	if *cleanInt > 0 && m == server.ModeWPL {
		log.Fatalf("quickstored: -cleaner-every is meaningless under WPL (uncommitted pages must never reach their home location)")
	}
	if *shardN < 1 || *shardID < 0 || *shardID >= *shardN {
		log.Fatalf("quickstored: -shard-id %d out of range for -shard-count %d", *shardID, *shardN)
	}
	cfg := server.Config{
		Mode:             m,
		ShardID:          *shardID,
		ShardCount:       *shardN,
		PoolPages:        *cacheMB << 20 / page.Size,
		LogCapacity:      *logMB << 20,
		PoolShards:       *shards,
		Serialize:        *serial,
		GroupCommitDelay: *gcDelay,
		WPLInstallAsync:  !*wplSync,
		FuzzyCheckpoints: *fuzzy,
		CleanerEvery:     *cleanInt,
		CleanerBatch:     *cleanN,
		DirtyPageTarget:  *dirtyTgt,
	}
	recover := false
	var vol disk.Store = disk.NewMemStore()
	if *data != "" {
		fs, err := disk.OpenFileStore(*data)
		if err != nil {
			log.Fatalf("quickstored: opening volume: %v", err)
		}
		recover = fs.Pages() > 0
		vol = fs
	}
	// The volume is always wrapped in the fault injector; it is transparent
	// until a plan is armed (qsctl faults arm <plan>). The checksum wrapper
	// sits above it, so injected rot and tears land below the integrity
	// envelope and are caught on the next read, exactly like media damage.
	faults := faultinject.NewStore(vol)
	cfg.Store = faults
	if *cksum {
		cfg.Store = disk.NewChecksummed(faults)
		cfg.ScrubEvery = *scrubInt
		cfg.ScrubPages = *scrubN
	} else if *scrubInt > 0 {
		log.Fatalf("quickstored: -scrub-every needs -checksum (nothing to verify without envelopes)")
	}
	if *replShip && *replicaOf != "" {
		log.Fatalf("quickstored: -repl and -replica-of are mutually exclusive (a standby does not ship onward)")
	}
	cfg.Log = wal.New(cfg.LogCapacity)
	var boot *archive.BootstrapResult
	if *replicaOf != "" {
		cfg.Standby = true
		if *archDir != "" {
			// Cold bootstrap: restore the newest backup plus archived log from
			// a copy of the primary's archive, skipping the restart pass
			// (ReplayLocal below applies the rebuilt log's effects instead).
			blobs, err := archive.OpenDir(*archDir)
			if err != nil {
				log.Fatalf("quickstored: opening archive: %v", err)
			}
			boot, err = archive.Bootstrap(blobs, archive.BootstrapOptions{
				NewStore: func() (disk.Store, error) { return cfg.Store, nil },
				LogSlack: cfg.LogCapacity,
			})
			if err != nil {
				log.Fatalf("quickstored: archive bootstrap: %v", err)
			}
			cfg.Log = boot.Log
			log.Printf("bootstrapped from backup at LSN %d (%d segments, %d records re-appended)",
				boot.Backup.End, boot.Segments, boot.Records)
		} else if recover {
			log.Fatalf("quickstored: a standby must start from an empty volume, or cold-bootstrap from an archive copy (-archive-dir)")
		}
	}
	var prim *repl.Primary
	if *replShip {
		ack := repl.AckAsync
		switch *replAck {
		case "async":
		case "semi-sync":
			ack = repl.AckSemiSync
		default:
			log.Fatalf("quickstored: unknown -repl-ack %q (async|semi-sync)", *replAck)
		}
		prim = repl.NewPrimary(cfg.Log, repl.PrimaryOptions{Mode: ack, AckTimeout: *replTO})
		prim.Wire(&cfg)
	}
	var arch *archive.Archiver
	if *archDir != "" && *replicaOf == "" {
		blobs, err := archive.OpenDir(*archDir)
		if err != nil {
			log.Fatalf("quickstored: opening archive: %v", err)
		}
		// The archiver scans cfg.Store, not the raw volume: with checksums on,
		// backups hold verified bytes and refuse to archive rot.
		arch, err = archive.NewArchiver(cfg.Log, cfg.Store, blobs, archive.Options{})
		if err != nil {
			log.Fatalf("quickstored: starting archiver: %v", err)
		}
		archive.Wire(&cfg, arch)
	}
	srv := server.New(cfg)
	if recover && *replicaOf == "" {
		if err := srv.NewSession(nil, nil).Restart(); err != nil {
			log.Fatalf("quickstored: recovery: %v", err)
		}
		log.Printf("recovered volume %s", *data)
	}
	var sb *repl.Standby
	if *replicaOf != "" {
		feed, err := wire.Dial(*replicaOf)
		if err != nil {
			log.Fatalf("quickstored: connecting to primary %s: %v", *replicaOf, err)
		}
		sb = repl.NewStandby(cfg.Log, srv.NewSession(nil, nil), feed.ReplFetch, repl.StandbyOptions{})
		if boot != nil {
			if err := sb.ReplayLocal(); err != nil {
				log.Fatalf("quickstored: bootstrap replay: %v", err)
			}
		}
		go func() {
			// Run ends nil after promotion (qsctl promote) or Stop; anything
			// else — a gap (re-bootstrap from a fresher archive copy) or a
			// diverged replica — is fatal by design.
			if err := sb.Run(); err != nil {
				log.Fatalf("quickstored: replication: %v", err)
			}
		}()
		log.Printf("hot standby following %s", *replicaOf)
	}
	// The periodic archiver goroutine is stopped (and joined) before the
	// final drain, so the two never race on the log cursor.
	archStop := make(chan struct{})
	archDone := make(chan struct{})
	if arch == nil {
		close(archDone)
	}
	if arch != nil {
		// The in-memory log restarts its LSN space every process start, so
		// each archiver generation begins with a base backup: everything a
		// restore needs from earlier generations is inside it.
		info, err := arch.Backup()
		if err != nil {
			log.Fatalf("quickstored: initial base backup: %v", err)
		}
		log.Printf("archiving to %s (generation %d, base backup of %d pages at LSN %d)",
			*archDir, arch.Generation(), info.Pages, info.End)
		go func() {
			defer close(archDone)
			t := time.NewTicker(*archInt)
			defer t.Stop()
			for {
				select {
				case <-archStop:
					return
				case <-t.C:
					if err := arch.Drain(); err != nil {
						log.Printf("archiver: %v", err)
					}
				}
			}
		}()
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("quickstored: %v", err)
	}
	log.Printf("quickstored listening on %s (mode %v, cache %d MB, log %d MB)",
		lis.Addr(), m, *cacheMB, *logMB)
	if *shardN > 1 {
		log.Printf("shard %d of %d: allocating ids in residue class %d (mod %d)",
			*shardID, *shardN, *shardID+1, *shardN)
	}

	// Orderly shutdown: checkpoint so a file-backed volume reopens clean.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		if sb != nil {
			sb.Stop()
		}
		if srv.Standby() {
			// A standby owns no durability obligations: its volume rebuilds
			// from the primary's stream (or archive) on the next start.
			log.Printf("standby shutting down")
			lis.Close()
			os.Exit(0)
		}
		log.Printf("shutting down: checkpointing")
		srv.Close() // drain the WPL install worker before the final checkpoint
		sn := srv.NewSession(nil, nil)
		if *fuzzy {
			// A fuzzy checkpoint does not flush pages, and the in-memory log
			// dies with the process: write everything home so a file-backed
			// volume reopens clean (DESIGN.md §13).
			if err := sn.FlushAll(); err != nil {
				log.Printf("final flush failed: %v", err)
			}
		}
		if err := sn.Checkpoint(); err != nil {
			log.Printf("checkpoint failed: %v", err)
		}
		if arch != nil {
			close(archStop)
			<-archDone
			if err := arch.Drain(); err != nil {
				log.Printf("final archive drain failed: %v", err)
			}
		}
		st := srv.Stats()
		log.Printf("served %d commits, %d aborts, %d pages", st.Commits, st.Aborts, st.PagesServed)
		lis.Close()
		os.Exit(0)
	}()

	if err := wire.ServeWith(lis, srv, wire.ServeOpts{Faults: faults, Archive: arch, Repl: prim, Standby: sb}); err != nil {
		log.Fatalf("quickstored: %v", err)
	}
}
