// Command benchcommit measures multi-client commit throughput against one
// in-process server, comparing the serialized pre-concurrency baseline (one
// global mutex, one inline log force per commit) with concurrent sessions
// plus group commit.
//
// Each client runs small update transactions against its own page (the
// paper's private-module workload, which keeps lock conflicts out of the
// measurement), so the contended resource is exactly what group commit
// targets: the stable log device. The log's modeled write latency
// (-writedelay) is paid per force, so a group flush covering k commits pays
// it once where the baseline pays it k times.
//
//	benchcommit -out BENCH_commit.json
//
// The output JSON records, per scheme x client count x arm: wall-clock
// commit throughput, stable log forces vs commits, and the group-commit
// batching histogram, plus a summary with the 8-client speedup per scheme.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	quickstore "repro"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Run is one benchmark cell: a scheme, a client count and an arm.
type Run struct {
	Scheme     string  `json:"scheme"`
	Clients    int     `json:"clients"`
	Arm        string  `json:"arm"` // "serialized" or "group"
	Txns       int64   `json:"txns"`
	Seconds    float64 `json:"seconds"`
	TxnsPerSec float64 `json:"txns_per_sec"`

	// Stable-log behaviour over the timed window.
	Commits        int64   `json:"commits"`
	LogForces      int64   `json:"log_forces"`
	FlushesAvoided int64   `json:"flushes_avoided"`
	MeanBatch      float64 `json:"mean_batch,omitempty"`
	BatchSizes     []int64 `json:"batch_sizes,omitempty"`

	LatchContention int64 `json:"latch_contention"`
	LockWaits       int64 `json:"lock_waits"`
}

// Summary distills the acceptance criterion per scheme.
type Summary struct {
	Scheme              string  `json:"scheme"`
	SerializedTPS8      float64 `json:"serialized_tps_8_clients"`
	GroupTPS8           float64 `json:"group_tps_8_clients"`
	Speedup8            float64 `json:"speedup_8_clients"`
	GroupForces8        int64   `json:"group_log_forces_8_clients"`
	GroupCommits8       int64   `json:"group_commits_8_clients"`
	ForcesBelowCommits8 bool    `json:"forces_below_commits_8_clients"`
}

// Output is the whole BENCH_commit.json document.
type Output struct {
	Config struct {
		TxnsPerClient int    `json:"txns_per_client"`
		WriteDelay    string `json:"log_write_delay"`
		ObjectBytes   int    `json:"object_bytes"`
		Clients       []int  `json:"client_counts"`
		Checksum      bool   `json:"checksum_envelope"`
		ChecksumNote  string `json:"checksum_note,omitempty"`
	} `json:"config"`
	Runs    []Run     `json:"runs"`
	Summary []Summary `json:"summary"`
}

var schemes = []quickstore.Scheme{
	quickstore.PDESM, quickstore.SDESM, quickstore.SLESM,
	quickstore.PDREDO, quickstore.WPL,
}

func main() {
	var (
		out        = flag.String("out", "BENCH_commit.json", "output file (- for stdout)")
		nPerClient = flag.Int("n", 150, "update transactions per client")
		writeDelay = flag.Duration("writedelay", 200*time.Microsecond, "modeled stable-log write latency per force")
		clientsArg = flag.String("clients", "1,2,4,8", "comma-separated client counts")
		cksum      = flag.Bool("checksum", false, "wrap the volume in the per-page checksum envelope (measures integrity overhead)")
		ckpt       = flag.Bool("ckpt", false, "run the checkpoint benchmark instead (commit p99 during a checkpoint, sharp vs fuzzy; writes BENCH_checkpoint.json)")
		replB      = flag.Bool("repl", false, "run the replication benchmark instead (commit p50/p99 with a hot standby, async vs semi-sync acks; writes BENCH_repl.json)")
		shardsB    = flag.Int("shards", 0, "run the sharding benchmark instead: cluster sizes 1..N, disjoint vs 10%-cross-shard mixes (writes BENCH_shard.json)")
	)
	flag.Parse()
	checksummed = *cksum

	if *ckpt {
		dest := *out
		if dest == "BENCH_commit.json" {
			dest = "BENCH_checkpoint.json"
		}
		runCkptBench(dest, *writeDelay)
		return
	}
	if *replB {
		dest := *out
		if dest == "BENCH_commit.json" {
			dest = "BENCH_repl.json"
		}
		runReplBench(dest, *writeDelay)
		return
	}
	if *shardsB > 0 {
		dest := *out
		if dest == "BENCH_commit.json" {
			dest = "BENCH_shard.json"
		}
		runShardBench(dest, *shardsB, *writeDelay)
		return
	}

	var clientCounts []int
	for _, s := range strings.Split(*clientsArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("benchcommit: bad -clients entry %q", s)
		}
		clientCounts = append(clientCounts, n)
	}

	var doc Output
	doc.Config.TxnsPerClient = *nPerClient
	doc.Config.WriteDelay = writeDelay.String()
	doc.Config.ObjectBytes = objectBytes
	doc.Config.Clients = clientCounts
	doc.Config.Checksum = checksummed
	if checksummed {
		doc.Config.ChecksumNote = "volume behind disk.Checksummed: every data write stamps and every data read verifies a per-page CRC-32C envelope"
	} else {
		doc.Config.ChecksumNote = "raw volume; diff against BENCH_commit_checksum.json (same grid, -checksum) for the integrity tax of the CRC envelope"
	}

	for _, sc := range schemes {
		var ser8, grp8 *Run
		for _, nc := range clientCounts {
			for _, group := range []bool{false, true} {
				r := runOne(sc, nc, group, *nPerClient, *writeDelay)
				doc.Runs = append(doc.Runs, r)
				fmt.Fprintf(os.Stderr, "%-7s %d clients %-10s %8.0f txn/s  forces=%d/%d commits\n",
					r.Scheme, r.Clients, r.Arm, r.TxnsPerSec, r.LogForces, r.Commits)
				if nc == 8 {
					rr := r
					if group {
						grp8 = &rr
					} else {
						ser8 = &rr
					}
				}
			}
		}
		if ser8 != nil && grp8 != nil {
			doc.Summary = append(doc.Summary, Summary{
				Scheme:              sc.String(),
				SerializedTPS8:      ser8.TxnsPerSec,
				GroupTPS8:           grp8.TxnsPerSec,
				Speedup8:            grp8.TxnsPerSec / ser8.TxnsPerSec,
				GroupForces8:        grp8.LogForces,
				GroupCommits8:       grp8.Commits,
				ForcesBelowCommits8: grp8.LogForces < grp8.Commits,
			})
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	for _, s := range doc.Summary {
		fmt.Printf("%-7s 8-client speedup %.2fx (%.0f -> %.0f txn/s), forces %d < commits %d: %v\n",
			s.Scheme, s.Speedup8, s.SerializedTPS8, s.GroupTPS8,
			s.GroupForces8, s.GroupCommits8, s.ForcesBelowCommits8)
	}
}

const objectBytes = 64

// checksummed selects the -checksum arm: every cell's volume sits behind
// disk.Checksummed, so data writes pay a CRC stamp and data reads a verify.
var checksummed bool

// benchStore builds one cell's volume per the -checksum flag.
func benchStore() disk.Store {
	if checksummed {
		return disk.NewChecksummed(disk.NewMemStore())
	}
	return disk.NewMemStore()
}

// runOne executes one benchmark cell on a fresh in-memory server.
func runOne(sc quickstore.Scheme, nclients int, group bool, nPerClient int, writeDelay time.Duration) Run {
	mode, err := sc.ServerMode()
	if err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	cfg := server.Config{
		Mode:            mode,
		Store:           benchStore(),
		LogCapacity:     wal.DefaultCapacity,
		CheckpointEvery: 1 << 30, // keep checkpoints out of the timed window
		Serialize:       !group,
		WPLInstallAsync: group, // the concurrent arm gets the async installer
	}
	if !group {
		cfg.GroupCommitDelay = -1 // inline force per commit, the old behaviour
	}
	srv := server.New(cfg)
	defer srv.Close()
	srv.Log().SetWriteDelay(writeDelay)

	// One client per worker, each with a private page holding its object.
	clis := make([]*client.Client, nclients)
	oids := make([]quickstore.OID, nclients)
	for i := range clis {
		clis[i] = newClient(sc, mode, srv)
		tx, err := clis[i].Begin()
		if err != nil {
			log.Fatalf("benchcommit: setup begin: %v", err)
		}
		if _, err := tx.NewPage(); err != nil {
			log.Fatalf("benchcommit: setup page: %v", err)
		}
		oid, err := tx.Allocate(objectBytes)
		if err != nil {
			log.Fatalf("benchcommit: setup alloc: %v", err)
		}
		if err := tx.Write(oid, 0, make([]byte, objectBytes)); err != nil {
			log.Fatalf("benchcommit: setup write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("benchcommit: setup commit: %v", err)
		}
		oids[i] = oid
	}

	before := srv.ExtendedStats()
	//qslint:allow determinism: throughput timer for the printed report; benchcommit measures real time by design
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, nclients)
	for i := 0; i < nclients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, objectBytes)
			for t := 0; t < nPerClient; t++ {
				copy(buf, fmt.Sprintf("client %d txn %d", i, t))
				tx, err := clis[i].Begin()
				if err == nil {
					if err = tx.Write(oids[i], 0, buf); err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
				}
				if err != nil {
					errs[i] = fmt.Errorf("client %d txn %d: %w", i, t, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	//qslint:allow determinism: throughput timer for the printed report; benchcommit measures real time by design
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			log.Fatalf("benchcommit: %s %d clients: %v", sc, nclients, err)
		}
	}
	after := srv.ExtendedStats()

	r := Run{
		Scheme:          sc.String(),
		Clients:         nclients,
		Txns:            int64(nclients * nPerClient),
		Seconds:         elapsed.Seconds(),
		TxnsPerSec:      float64(nclients*nPerClient) / elapsed.Seconds(),
		Commits:         after.Commits - before.Commits,
		LogForces:       after.LogForces - before.LogForces,
		FlushesAvoided:  after.GroupCommit.FlushesAvoided - before.GroupCommit.FlushesAvoided,
		LatchContention: after.LatchContention - before.LatchContention,
		LockWaits:       after.LockWaits - before.LockWaits,
	}
	if group {
		r.Arm = "group"
		batches := after.GroupCommit.Batches - before.GroupCommit.Batches
		gcCommits := after.GroupCommit.Commits - before.GroupCommit.Commits
		if batches > 0 {
			r.MeanBatch = float64(gcCommits) / float64(batches)
		}
		for i := range after.GroupCommit.BatchSizes {
			r.BatchSizes = append(r.BatchSizes,
				after.GroupCommit.BatchSizes[i]-before.GroupCommit.BatchSizes[i])
		}
	} else {
		r.Arm = "serialized"
	}
	return r
}

// newClient builds an in-process client session against srv, mirroring what
// quickstore.Open does for its embedded single client.
func newClient(sc quickstore.Scheme, mode server.Mode, srv *server.Server) *client.Client {
	var cs client.Scheme
	switch sc {
	case quickstore.PDESM, quickstore.PDREDO:
		cs = client.PD
	case quickstore.SDESM:
		cs = client.SD
	case quickstore.SLESM:
		cs = client.SL
	case quickstore.WPL:
		cs = client.WPL
	}
	return client.New(client.Config{
		Scheme:         cs,
		PoolPages:      1 << 20 / 8192 * 8, // 8 MB
		RecoveryBytes:  4 << 20,
		ShipDirtyPages: mode != server.ModeREDO,
	}, wire.NewDirect(srv, nil, nil))
}
