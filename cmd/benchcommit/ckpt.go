package main

// The -ckpt arm: commit latency under an active checkpoint, sharp vs fuzzy.
//
// Both arms run the same 8-client PD-ESM update workload over a spread of
// pages (so the dirty set is real) with a modeled data-disk write latency
// (disk.Delayed) and a checkpointer goroutine issuing checkpoints on a fixed
// cadence. The sharp arm is the pre-fuzzy server: each checkpoint takes the
// gate exclusively and flushes every dirty page while commits wait. The
// fuzzy arm logs the DPT instead and relies on the background page cleaner
// (plus commit backpressure past 2x the dirty-page target) to drain pages.
//
// Every commit is timestamped, every checkpoint's active window recorded,
// and the report keys on the p99 latency of commits that overlapped a
// checkpoint window — the tail a stop-the-world flush creates — plus the
// end-of-run DPT size and redo distance, which the dirty-page target is
// supposed to bound.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	quickstore "repro"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/server"
	"repro/internal/wal"
)

// Checkpoint-arm workload shape. The dirty-page target is what the fuzzy
// arm's cleaner drains toward; 2x is the commit backpressure watermark, so
// the end-of-run DPT must sit under 2x target for the bound to hold.
const (
	ckptClients     = 8
	ckptPagesPerCli = 32
	ckptTxnsPerCli  = 400
	ckptDirtyTarget = 64
	ckptEvery       = 10 * time.Millisecond
	ckptDataDelay   = 200 * time.Microsecond
	ckptCleanEvery  = 2 * time.Millisecond
	ckptCleanBatch  = 64
)

// CkptRun is one arm of the checkpoint benchmark.
type CkptRun struct {
	Arm        string  `json:"arm"` // "sharp" or "fuzzy"
	Txns       int64   `json:"txns"`
	Seconds    float64 `json:"seconds"`
	TxnsPerSec float64 `json:"txns_per_sec"`

	Checkpoints int64 `json:"checkpoints"`
	CkptStallNs int64 `json:"ckpt_stall_ns"` // gate held exclusively by sharp checkpoints

	P50Ns           int64 `json:"commit_p50_ns"`
	P99Ns           int64 `json:"commit_p99_ns"`
	DuringCkpt      int64 `json:"commits_during_ckpt"`
	P99DuringCkptNs int64 `json:"commit_p99_during_ckpt_ns"`

	CleanerPages      int64 `json:"cleaner_pages"`
	DirtyPagesEnd     int64 `json:"dirty_pages_end"`
	RedoDistanceBytes int64 `json:"redo_distance_bytes"`
}

// CkptSummary distills the acceptance criteria.
type CkptSummary struct {
	SharpP99DuringNs int64   `json:"sharp_p99_during_ckpt_ns"`
	FuzzyP99DuringNs int64   `json:"fuzzy_p99_during_ckpt_ns"`
	Improvement      float64 `json:"p99_during_ckpt_improvement"`

	DirtyPageTarget    int   `json:"dirty_page_target"`
	DirtyPageBound     int   `json:"dirty_page_bound"` // 2x target, the backpressure watermark
	FuzzyDirtyPagesEnd int64 `json:"fuzzy_dirty_pages_end"`
	FuzzyRedoBytes     int64 `json:"fuzzy_redo_distance_bytes"`
	RedoUnderBound     bool  `json:"redo_under_bound"`
}

// CkptOutput is the whole BENCH_checkpoint.json document.
type CkptOutput struct {
	Config struct {
		Clients      int    `json:"clients"`
		PagesPerCli  int    `json:"pages_per_client"`
		TxnsPerCli   int    `json:"txns_per_client"`
		WriteDelay   string `json:"log_write_delay"`
		DataDelay    string `json:"data_write_delay"`
		CkptEvery    string `json:"checkpoint_every"`
		DirtyTarget  int    `json:"dirty_page_target"`
		CleanerEvery string `json:"cleaner_every"`
		CleanerBatch int    `json:"cleaner_batch"`
		Scheme       string `json:"scheme"`
	} `json:"config"`
	Runs    []CkptRun   `json:"runs"`
	Summary CkptSummary `json:"summary"`
}

// commitSample is one timed commit.
type commitSample struct {
	start, end time.Time
	lat        int64 // nanoseconds
}

type ckptWindow struct{ start, end time.Time }

// runCkptBench runs both arms and writes the report to out.
func runCkptBench(out string, writeDelay time.Duration) {
	var doc CkptOutput
	doc.Config.Clients = ckptClients
	doc.Config.PagesPerCli = ckptPagesPerCli
	doc.Config.TxnsPerCli = ckptTxnsPerCli
	doc.Config.WriteDelay = writeDelay.String()
	doc.Config.DataDelay = ckptDataDelay.String()
	doc.Config.CkptEvery = ckptEvery.String()
	doc.Config.DirtyTarget = ckptDirtyTarget
	doc.Config.CleanerEvery = ckptCleanEvery.String()
	doc.Config.CleanerBatch = ckptCleanBatch
	doc.Config.Scheme = quickstore.PDESM.String()

	var sharp, fuzzy CkptRun
	for _, isFuzzy := range []bool{false, true} {
		r := runCkptArm(isFuzzy, writeDelay)
		doc.Runs = append(doc.Runs, r)
		fmt.Fprintf(os.Stderr, "%-5s %8.0f txn/s  ckpts=%d  p99=%s  p99_during_ckpt=%s (%d commits)  dpt_end=%d\n",
			r.Arm, r.TxnsPerSec, r.Checkpoints,
			time.Duration(r.P99Ns), time.Duration(r.P99DuringCkptNs), r.DuringCkpt, r.DirtyPagesEnd)
		if isFuzzy {
			fuzzy = r
		} else {
			sharp = r
		}
	}

	s := CkptSummary{
		SharpP99DuringNs:   sharp.P99DuringCkptNs,
		FuzzyP99DuringNs:   fuzzy.P99DuringCkptNs,
		DirtyPageTarget:    ckptDirtyTarget,
		DirtyPageBound:     2 * ckptDirtyTarget,
		FuzzyDirtyPagesEnd: fuzzy.DirtyPagesEnd,
		FuzzyRedoBytes:     fuzzy.RedoDistanceBytes,
		RedoUnderBound:     fuzzy.DirtyPagesEnd <= int64(2*ckptDirtyTarget),
	}
	// Few commits overlap the (brief) fuzzy windows; if the sample is too
	// thin to trust, fall back to the arm's overall p99, which can only
	// understate the improvement.
	denom := fuzzy.P99DuringCkptNs
	if fuzzy.DuringCkpt < 10 || denom == 0 {
		denom = fuzzy.P99Ns
	}
	if denom > 0 {
		s.Improvement = float64(sharp.P99DuringCkptNs) / float64(denom)
	}
	doc.Summary = s

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	fmt.Printf("ckpt p99 during checkpoint: sharp %s -> fuzzy %s (%.1fx), fuzzy end-of-run DPT %d <= bound %d: %v\n",
		time.Duration(s.SharpP99DuringNs), time.Duration(denom), s.Improvement,
		s.FuzzyDirtyPagesEnd, s.DirtyPageBound, s.RedoUnderBound)
}

// runCkptArm executes one arm: a committing 8-client workload with a
// checkpointer on a fixed cadence.
//
//qslint:allow determinism: latency benchmark — timestamps commits and checkpoint windows by design; nothing here is logged or replayed
func runCkptArm(fuzzy bool, writeDelay time.Duration) CkptRun {
	cfg := server.Config{
		Mode:            server.ModeESM,
		Store:           disk.NewDelayed(disk.NewMemStore(), 0, ckptDataDelay),
		LogCapacity:     wal.DefaultCapacity,
		CheckpointEvery: 1 << 30, // the bench drives checkpoints itself
		WPLInstallAsync: true,
	}
	if fuzzy {
		cfg.FuzzyCheckpoints = true
		cfg.CleanerEvery = ckptCleanEvery
		cfg.CleanerBatch = ckptCleanBatch
		cfg.DirtyPageTarget = ckptDirtyTarget
	}
	srv := server.New(cfg)
	defer srv.Close()
	srv.Log().SetWriteDelay(writeDelay)

	// Each client owns pagesPerCli pages, one object per page, written
	// round-robin so the server-side dirty set stays wide.
	clis := make([]*client.Client, ckptClients)
	oids := make([][]quickstore.OID, ckptClients)
	for i := range clis {
		clis[i] = newClient(quickstore.PDESM, server.ModeESM, srv)
		tx, err := clis[i].Begin()
		if err != nil {
			log.Fatalf("benchcommit: ckpt setup begin: %v", err)
		}
		for j := 0; j < ckptPagesPerCli; j++ {
			if _, err := tx.NewPage(); err != nil {
				log.Fatalf("benchcommit: ckpt setup page: %v", err)
			}
			oid, err := tx.Allocate(objectBytes)
			if err != nil {
				log.Fatalf("benchcommit: ckpt setup alloc: %v", err)
			}
			if err := tx.Write(oid, 0, make([]byte, objectBytes)); err != nil {
				log.Fatalf("benchcommit: ckpt setup write: %v", err)
			}
			oids[i] = append(oids[i], oid)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("benchcommit: ckpt setup commit: %v", err)
		}
	}

	// Checkpointer: one checkpoint per cadence tick, active window recorded.
	var (
		winMu   sync.Mutex
		windows []ckptWindow
		done    = make(chan struct{})
		ckptWG  sync.WaitGroup
	)
	sn := srv.NewSession(nil, nil)
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		tick := time.NewTicker(ckptEvery)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				w := ckptWindow{start: time.Now()}
				if err := sn.Checkpoint(); err != nil {
					log.Fatalf("benchcommit: checkpoint: %v", err)
				}
				w.end = time.Now()
				winMu.Lock()
				windows = append(windows, w)
				winMu.Unlock()
			}
		}
	}()

	before := srv.ExtendedStats()
	start := time.Now()
	var wg sync.WaitGroup
	samples := make([][]commitSample, ckptClients)
	errs := make([]error, ckptClients)
	for i := 0; i < ckptClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, objectBytes)
			for t := 0; t < ckptTxnsPerCli; t++ {
				copy(buf, fmt.Sprintf("client %d txn %d", i, t))
				s0 := time.Now()
				tx, err := clis[i].Begin()
				if err == nil {
					if err = tx.Write(oids[i][t%ckptPagesPerCli], 0, buf); err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
				}
				s1 := time.Now()
				if err != nil {
					errs[i] = fmt.Errorf("client %d txn %d: %w", i, t, err)
					return
				}
				samples[i] = append(samples[i], commitSample{start: s0, end: s1, lat: s1.Sub(s0).Nanoseconds()})
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(done)
	ckptWG.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatalf("benchcommit: ckpt arm: %v", err)
		}
	}
	// Let the paced cleaner finish its in-flight drain (it lags the load by
	// at most a few ticks) so the recorded DPT size is the steady-state one
	// the dirty-page target bounds, not a mid-tick snapshot.
	if fuzzy {
		time.Sleep(50 * ckptCleanEvery)
	}
	after := srv.ExtendedStats()

	var all []commitSample
	for _, s := range samples {
		all = append(all, s...)
	}
	lats := make([]int64, 0, len(all))
	var during []int64
	winMu.Lock()
	wins := windows
	winMu.Unlock()
	for _, s := range all {
		lats = append(lats, s.lat)
		for _, w := range wins {
			if s.start.Before(w.end) && w.start.Before(s.end) {
				during = append(during, s.lat)
				break
			}
		}
	}

	arm := "sharp"
	if fuzzy {
		arm = "fuzzy"
	}
	return CkptRun{
		Arm:               arm,
		Txns:              int64(len(all)),
		Seconds:           elapsed.Seconds(),
		TxnsPerSec:        float64(len(all)) / elapsed.Seconds(),
		Checkpoints:       after.Checkpoints - before.Checkpoints,
		CkptStallNs:       after.CkptStallNs - before.CkptStallNs,
		P50Ns:             percentile(lats, 50),
		P99Ns:             percentile(lats, 99),
		DuringCkpt:        int64(len(during)),
		P99DuringCkptNs:   percentile(during, 99),
		CleanerPages:      after.CleanerPages - before.CleanerPages,
		DirtyPagesEnd:     after.DirtyPages,
		RedoDistanceBytes: after.RedoDistanceBytes,
	}
}

// percentile returns the p-th percentile of lats (nearest-rank; 0 if empty).
func percentile(lats []int64, p int) int64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]int64(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}
