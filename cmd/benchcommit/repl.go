package main

// The -repl arm: commit latency with a hot standby attached, async vs
// semi-sync acks.
//
// All arms run the same 8-client PD-ESM private-page update workload as the
// main grid. The "off" arm is the no-replication baseline. The "async" arm
// wires a repl.Primary and a continuously-applying in-process standby but
// commits return after the local force, so the stream rides for free. The
// "semi-sync" arm makes each commit wait until the standby has applied and
// forced it — the ack is carried on the standby's next fetch, so the paid
// price is one poll cycle plus the standby's own apply and log force.
//
// Every commit is timestamped; the report keys on commit p50/p99 per arm at
// 8 clients, the semi-sync overhead factor over async, and that no commit
// degraded to async on an ack timeout (the bound the ack timeout enforces).

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	quickstore "repro"
	"repro/internal/client"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

// Replication-arm workload shape.
const (
	replClients    = 8
	replTxnsPerCli = 300
	replPoll       = 100 * time.Microsecond
	replAckTimeout = time.Second
)

// ReplRun is one arm of the replication benchmark.
type ReplRun struct {
	Arm        string  `json:"arm"` // "off", "async" or "semi-sync"
	Txns       int64   `json:"txns"`
	Seconds    float64 `json:"seconds"`
	TxnsPerSec float64 `json:"txns_per_sec"`

	P50Ns int64 `json:"commit_p50_ns"`
	P99Ns int64 `json:"commit_p99_ns"`

	// Shipping behaviour over the run (zero in the "off" arm).
	Fetches        int64  `json:"fetches,omitempty"`
	AckWaits       int64  `json:"ack_waits,omitempty"`
	AckTimeouts    int64  `json:"ack_timeouts"`
	StandbyRecords int64  `json:"standby_records,omitempty"`
	StandbyLagEnd  uint64 `json:"standby_lag_bytes_end"`
}

// ReplSummary distills the acceptance criteria: semi-sync costs a bounded
// factor over async and never trips its ack timeout.
type ReplSummary struct {
	OffP99Ns      int64   `json:"off_p99_ns"`
	AsyncP99Ns    int64   `json:"async_p99_ns"`
	SemiSyncP50Ns int64   `json:"semi_sync_p50_ns"`
	SemiSyncP99Ns int64   `json:"semi_sync_p99_ns"`
	OverheadP50   float64 `json:"semi_sync_p50_over_async"`
	OverheadP99   float64 `json:"semi_sync_p99_over_async"`
	AckTimeouts   int64   `json:"semi_sync_ack_timeouts"`
	Bounded       bool    `json:"overhead_bounded"` // no timeouts and p99 within 10x async
}

// ReplOutput is the whole BENCH_repl.json document.
type ReplOutput struct {
	Config struct {
		Clients    int    `json:"clients"`
		TxnsPerCli int    `json:"txns_per_client"`
		WriteDelay string `json:"log_write_delay"`
		Poll       string `json:"standby_poll_interval"`
		AckTimeout string `json:"ack_timeout"`
		Scheme     string `json:"scheme"`
	} `json:"config"`
	Runs    []ReplRun   `json:"runs"`
	Summary ReplSummary `json:"summary"`
}

// runReplBench runs all three arms and writes the report to out.
func runReplBench(out string, writeDelay time.Duration) {
	var doc ReplOutput
	doc.Config.Clients = replClients
	doc.Config.TxnsPerCli = replTxnsPerCli
	doc.Config.WriteDelay = writeDelay.String()
	doc.Config.Poll = replPoll.String()
	doc.Config.AckTimeout = replAckTimeout.String()
	doc.Config.Scheme = quickstore.PDESM.String()

	runs := map[string]ReplRun{}
	for _, arm := range []string{"off", "async", "semi-sync"} {
		r := runReplArm(arm, writeDelay)
		doc.Runs = append(doc.Runs, r)
		runs[arm] = r
		fmt.Fprintf(os.Stderr, "%-9s %8.0f txn/s  p50=%s p99=%s  ack_waits=%d ack_timeouts=%d\n",
			r.Arm, r.TxnsPerSec, time.Duration(r.P50Ns), time.Duration(r.P99Ns),
			r.AckWaits, r.AckTimeouts)
	}

	async, semi := runs["async"], runs["semi-sync"]
	s := ReplSummary{
		OffP99Ns:      runs["off"].P99Ns,
		AsyncP99Ns:    async.P99Ns,
		SemiSyncP50Ns: semi.P50Ns,
		SemiSyncP99Ns: semi.P99Ns,
		AckTimeouts:   semi.AckTimeouts,
	}
	if async.P50Ns > 0 {
		s.OverheadP50 = float64(semi.P50Ns) / float64(async.P50Ns)
	}
	if async.P99Ns > 0 {
		s.OverheadP99 = float64(semi.P99Ns) / float64(async.P99Ns)
	}
	s.Bounded = s.AckTimeouts == 0 && semi.P99Ns < 10*async.P99Ns
	doc.Summary = s

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	fmt.Printf("repl commit p99: off %s, async %s, semi-sync %s (%.2fx async), ack timeouts %d, bounded: %v\n",
		time.Duration(s.OffP99Ns), time.Duration(s.AsyncP99Ns), time.Duration(s.SemiSyncP99Ns),
		s.OverheadP99, s.AckTimeouts, s.Bounded)
}

// runReplArm executes one arm: the 8-client private-page workload with a hot
// standby attached per the arm's ack mode.
//
//qslint:allow determinism: latency benchmark — timestamps commits by design; nothing here is logged or replayed
func runReplArm(arm string, writeDelay time.Duration) ReplRun {
	plog := wal.New(wal.DefaultCapacity)
	cfg := server.Config{
		Mode:            server.ModeESM,
		Store:           benchStore(),
		Log:             plog,
		CheckpointEvery: 1 << 30,
		WPLInstallAsync: true,
	}
	var prim *repl.Primary
	if arm != "off" {
		ack := repl.AckAsync
		if arm == "semi-sync" {
			ack = repl.AckSemiSync
		}
		prim = repl.NewPrimary(plog, repl.PrimaryOptions{Mode: ack, AckTimeout: replAckTimeout})
		prim.Wire(&cfg)
	}
	srv := server.New(cfg)
	defer srv.Close()
	plog.SetWriteDelay(writeDelay)

	var sb *repl.Standby
	if prim != nil {
		slog := wal.New(wal.DefaultCapacity)
		ssrv := server.New(server.Config{
			Mode:            server.ModeESM,
			Log:             slog,
			Standby:         true,
			CheckpointEvery: 1 << 30,
		})
		defer ssrv.Close()
		slog.SetWriteDelay(writeDelay) // the standby's force costs what the primary's does
		sb = repl.NewStandby(slog, ssrv.NewSession(nil, nil), prim.Fetch,
			repl.StandbyOptions{PollInterval: replPoll})
		go sb.Run()
		defer sb.Stop()
	}

	clis := make([]*client.Client, replClients)
	oids := make([]quickstore.OID, replClients)
	for i := range clis {
		clis[i] = newClient(quickstore.PDESM, server.ModeESM, srv)
		tx, err := clis[i].Begin()
		if err != nil {
			log.Fatalf("benchcommit: repl setup begin: %v", err)
		}
		if _, err := tx.NewPage(); err != nil {
			log.Fatalf("benchcommit: repl setup page: %v", err)
		}
		oid, err := tx.Allocate(objectBytes)
		if err != nil {
			log.Fatalf("benchcommit: repl setup alloc: %v", err)
		}
		if err := tx.Write(oid, 0, make([]byte, objectBytes)); err != nil {
			log.Fatalf("benchcommit: repl setup write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatalf("benchcommit: repl setup commit: %v", err)
		}
		oids[i] = oid
	}
	if prim != nil {
		// Semi-sync latency must not include the standby's initial catch-up:
		// wait for the shipped prefix so the timed window starts at zero lag.
		deadline := time.Now().Add(10 * time.Second)
		for sb.Status().AppliedLSN < plog.StableEnd() {
			if time.Now().After(deadline) {
				log.Fatalf("benchcommit: standby never caught up: %+v", sb.Status())
			}
			time.Sleep(time.Millisecond)
		}
	}

	var pBefore repl.PrimaryStatus
	if prim != nil {
		pBefore = prim.Status()
	}
	start := time.Now()
	var wg sync.WaitGroup
	samples := make([][]int64, replClients)
	errs := make([]error, replClients)
	for i := 0; i < replClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, objectBytes)
			for t := 0; t < replTxnsPerCli; t++ {
				copy(buf, fmt.Sprintf("client %d txn %d", i, t))
				s0 := time.Now()
				tx, err := clis[i].Begin()
				if err == nil {
					if err = tx.Write(oids[i], 0, buf); err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
				}
				if err != nil {
					errs[i] = fmt.Errorf("client %d txn %d: %w", i, t, err)
					return
				}
				samples[i] = append(samples[i], time.Since(s0).Nanoseconds())
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			log.Fatalf("benchcommit: repl arm %s: %v", arm, err)
		}
	}

	var lats []int64
	for _, s := range samples {
		lats = append(lats, s...)
	}
	r := ReplRun{
		Arm:        arm,
		Txns:       int64(len(lats)),
		Seconds:    elapsed.Seconds(),
		TxnsPerSec: float64(len(lats)) / elapsed.Seconds(),
		P50Ns:      percentile(lats, 50),
		P99Ns:      percentile(lats, 99),
	}
	if prim != nil {
		pAfter := prim.Status()
		r.Fetches = pAfter.Fetches - pBefore.Fetches
		r.AckWaits = pAfter.AckWaits - pBefore.AckWaits
		r.AckTimeouts = pAfter.AckTimeouts - pBefore.AckTimeouts
		r.StandbyRecords = sb.Status().Records
		r.StandbyLagEnd = sb.Status().LagBytes
	}
	return r
}
