package main

// The -shards arm: scale-out throughput across a sharded cluster, and the
// price of the two-phase commits that cross-shard transactions pay.
//
// For each cluster size (1, 2, ... doubling up to -shards N) the bench runs
// the private-page update workload twice: a "disjoint" mix in which every
// transaction touches a single shard — the partitioned-application ideal,
// where shards scale because they share nothing — and a "cross10" mix in
// which 10% of transactions update objects on two shards and therefore run
// the full presumed-abort 2PC (one forced PREPARE per participant plus the
// coordinator's forced DECIDE, instead of one forced commit record).
//
// Scaling is weak: the client count grows with the cluster (shardClients per
// shard), holding offered load per shard constant. That is the claim a
// partitioned store actually makes — N shards serve N times the clients at
// the one-shard rate — and it keeps per-shard group-commit batching
// comparable across sizes instead of thinning it as fixed clients spread
// out. The report keys on the disjoint scale-up over one shard (ideal: N)
// and the cross-shard tax (cross10 vs disjoint throughput at each size);
// the per-run prepare counters make the extra log forces visible rather
// than inferred.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	quickstore "repro"
	"repro/internal/client"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Shard-arm workload shape.
const (
	shardClients    = 4 // clients per shard (weak scaling)
	shardTxnsPerCli = 300
	shardCrossPct   = 10 // percent of cross-shard transactions in the "cross10" mix
)

// ShardRun is one cell: a cluster size and a transaction mix.
type ShardRun struct {
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	Mix        string  `json:"mix"` // "disjoint" or "cross10"
	Txns       int64   `json:"txns"`
	Seconds    float64 `json:"seconds"`
	TxnsPerSec float64 `json:"txns_per_sec"`

	Commits   int64 `json:"commits"`    // across all shards
	LogForces int64 `json:"log_forces"` // across all shards
	Prepares  int64 `json:"twopc_prepares"`
	LockWaits int64 `json:"lock_waits"`
}

// ShardSummary distills the scale-out story at the largest cluster size.
type ShardSummary struct {
	Shards           int     `json:"shards"`
	BaselineTPS      float64 `json:"one_shard_tps"`
	DisjointTPS      float64 `json:"disjoint_tps"`
	Cross10TPS       float64 `json:"cross10_tps"`
	DisjointScaleup  float64 `json:"disjoint_scaleup"`
	CrossShardFactor float64 `json:"cross10_over_disjoint"`
	Cross10Prepares  int64   `json:"cross10_prepares"`
}

// ShardOutput is the whole BENCH_shard.json document.
type ShardOutput struct {
	Config struct {
		ClientsPerShard int    `json:"clients_per_shard"`
		TxnsPerCli      int    `json:"txns_per_client"`
		WriteDelay      string `json:"log_write_delay"`
		CrossPct        int    `json:"cross_shard_percent"`
		Scheme          string `json:"scheme"`
	} `json:"config"`
	Runs    []ShardRun   `json:"runs"`
	Summary ShardSummary `json:"summary"`
}

// runShardBench runs the grid up to maxShards and writes the report to out.
func runShardBench(out string, maxShards int, writeDelay time.Duration) {
	var doc ShardOutput
	doc.Config.ClientsPerShard = shardClients
	doc.Config.TxnsPerCli = shardTxnsPerCli
	doc.Config.WriteDelay = writeDelay.String()
	doc.Config.CrossPct = shardCrossPct
	doc.Config.Scheme = quickstore.PDESM.String()

	var sizes []int
	for s := 1; s <= maxShards; s *= 2 {
		sizes = append(sizes, s)
	}
	if last := sizes[len(sizes)-1]; last != maxShards {
		sizes = append(sizes, maxShards)
	}

	runs := map[[2]interface{}]ShardRun{}
	for _, size := range sizes {
		for _, mix := range []string{"disjoint", "cross10"} {
			if size == 1 && mix == "cross10" {
				continue // one shard has no cross-shard transactions
			}
			r := runShardCell(size, mix, writeDelay)
			doc.Runs = append(doc.Runs, r)
			runs[[2]interface{}{size, mix}] = r
			fmt.Fprintf(os.Stderr, "%d shards %-9s %8.0f txn/s  forces=%d/%d commits, prepares=%d\n",
				r.Shards, r.Mix, r.TxnsPerSec, r.LogForces, r.Commits, r.Prepares)
		}
	}

	max := sizes[len(sizes)-1]
	base := runs[[2]interface{}{1, "disjoint"}]
	dis := runs[[2]interface{}{max, "disjoint"}]
	cross := runs[[2]interface{}{max, "cross10"}]
	doc.Summary = ShardSummary{
		Shards:          max,
		BaselineTPS:     base.TxnsPerSec,
		DisjointTPS:     dis.TxnsPerSec,
		Cross10TPS:      cross.TxnsPerSec,
		Cross10Prepares: cross.Prepares,
	}
	if base.TxnsPerSec > 0 {
		doc.Summary.DisjointScaleup = dis.TxnsPerSec / base.TxnsPerSec
	}
	if dis.TxnsPerSec > 0 {
		doc.Summary.CrossShardFactor = cross.TxnsPerSec / dis.TxnsPerSec
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		log.Fatalf("benchcommit: %v", err)
	}
	s := doc.Summary
	fmt.Printf("%d shards: disjoint scale-up %.2fx (%.0f -> %.0f txn/s), cross-shard mix at %.0f%% of disjoint (%d prepares)\n",
		s.Shards, s.DisjointScaleup, s.BaselineTPS, s.DisjointTPS, 100*s.CrossShardFactor, s.Cross10Prepares)
}

// runShardCell executes one cluster-size x mix cell on fresh in-memory
// shards, PD-ESM with group commit (the main grid's concurrent arm).
func runShardCell(size int, mix string, writeDelay time.Duration) ShardRun {
	srvs := make([]*server.Server, size)
	for s := 0; s < size; s++ {
		srvs[s] = server.New(server.Config{
			Mode:            server.ModeESM,
			Store:           benchStore(),
			LogCapacity:     wal.DefaultCapacity,
			CheckpointEvery: 1 << 30,
			ShardID:         s,
			ShardCount:      size,
			WPLInstallAsync: true,
		})
		defer srvs[s].Close()
		srvs[s].Log().SetWriteDelay(writeDelay)
	}

	// Weak scaling: shardClients workers per shard. One router per worker (a
	// client is single-threaded end to end), and one private object per
	// (worker, shard) so the only contended resources are the shards' log
	// devices.
	nclients := shardClients * size
	clis := make([]*client.Client, nclients)
	oids := make([][]quickstore.OID, nclients)
	for i := range clis {
		backends := make([]shard.Backend, size)
		for s := 0; s < size; s++ {
			backends[s] = wire.NewDirect(srvs[s], nil, nil)
		}
		cli, router, err := client.NewSharded(client.Config{
			Scheme:         client.PD,
			PoolPages:      1 << 20 / 8192 * 8, // 8 MB
			RecoveryBytes:  4 << 20,
			ShipDirtyPages: true,
		}, backends)
		if err != nil {
			log.Fatalf("benchcommit: shard setup: %v", err)
		}
		clis[i] = cli
		tx, err := cli.Begin()
		if err != nil {
			log.Fatalf("benchcommit: shard setup begin: %v", err)
		}
		for s := 0; s < size; s++ {
			router.SetAllocShard(s)
			if _, err := tx.NewPage(); err != nil {
				log.Fatalf("benchcommit: shard setup page: %v", err)
			}
			oid, err := tx.Allocate(objectBytes)
			if err != nil {
				log.Fatalf("benchcommit: shard setup alloc: %v", err)
			}
			if err := tx.Write(oid, 0, make([]byte, objectBytes)); err != nil {
				log.Fatalf("benchcommit: shard setup write: %v", err)
			}
			oids[i] = append(oids[i], oid)
		}
		router.SetAllocShard(-1)
		if err := tx.Commit(); err != nil {
			log.Fatalf("benchcommit: shard setup commit: %v", err)
		}
	}

	var before ShardRun
	for _, srv := range srvs {
		st := srv.ExtendedStats()
		before.Commits += st.Commits
		before.LogForces += st.LogForces
		before.Prepares += st.TwoPCPrepares
		before.LockWaits += st.LockWaits
	}
	//qslint:allow determinism: throughput timer for the printed report; benchcommit measures real time by design
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, nclients)
	for i := 0; i < nclients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, objectBytes)
			for t := 0; t < shardTxnsPerCli; t++ {
				copy(buf, fmt.Sprintf("client %d txn %d", i, t))
				home := (t + i) % size // staggered so clients spread across shards
				cross := mix == "cross10" && size > 1 && t%(100/shardCrossPct) == 0
				tx, err := clis[i].Begin()
				if err == nil {
					err = tx.Write(oids[i][home], 0, buf)
					if err == nil && cross {
						err = tx.Write(oids[i][(home+1)%size], 0, buf)
					}
					if err == nil {
						err = tx.Commit()
					} else {
						tx.Abort()
					}
				}
				if err != nil {
					errs[i] = fmt.Errorf("client %d txn %d: %w", i, t, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	//qslint:allow determinism: throughput timer for the printed report; benchcommit measures real time by design
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			log.Fatalf("benchcommit: %d shards %s: %v", size, mix, err)
		}
	}

	r := ShardRun{
		Shards:     size,
		Clients:    nclients,
		Mix:        mix,
		Txns:       int64(nclients * shardTxnsPerCli),
		Seconds:    elapsed.Seconds(),
		TxnsPerSec: float64(nclients*shardTxnsPerCli) / elapsed.Seconds(),
	}
	for _, srv := range srvs {
		st := srv.ExtendedStats()
		r.Commits += st.Commits
		r.LogForces += st.LogForces
		r.Prepares += st.TwoPCPrepares
		r.LockWaits += st.LockWaits
	}
	r.Commits -= before.Commits
	r.LogForces -= before.LogForces
	r.Prepares -= before.Prepares
	r.LockWaits -= before.LockWaits
	return r
}
