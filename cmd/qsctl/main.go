// Command qsctl pokes a running quickstored server: writes and reads test
// objects, measures round-trip latency, and exercises transactions from the
// command line.
//
//	qsctl -addr localhost:7447 put "some bytes"   # prints the new OID
//	qsctl -addr localhost:7447 get P7.0
//	qsctl -addr localhost:7447 -n 100 bench
//
// It also manages fault injection on the daemon's data volume (the server
// must be running; plans are deterministic per seed, so a failure seen under
// `faults arm chaos -seed 7` reproduces under the same seed):
//
//	qsctl faults list                 # built-in plan names
//	qsctl -seed 7 faults arm chaos    # arm a plan
//	qsctl faults disarm
//
// And it reports the daemon's server-side counters (group-commit batching,
// buffer-pool and latch behaviour, restart redo utilization):
//
//	qsctl stats            # human-readable counter summary
//	qsctl stats -json      # raw JSON (server.StatsX)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	quickstore "repro"
	"repro/internal/faultinject"
	"repro/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "localhost:7447", "server address")
		scheme = flag.String("scheme", "pd-esm", "client scheme: pd-esm|sd-esm|sl-esm|pd-redo|wpl")
		n      = flag.Int("n", 100, "bench: transactions to run")
		seed   = flag.Int64("seed", 1, "faults arm: fault plan seed")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: qsctl [flags] put <data> | get <oid> | bench | stats [-json] | faults arm <plan> | faults disarm | faults list")
		os.Exit(2)
	}
	if flag.Arg(0) == "faults" {
		if err := faultsCmd(*addr, *seed, flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "stats" {
		if err := statsCmd(*addr, flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sc, ok := map[string]quickstore.Scheme{
		"pd-esm":  quickstore.PDESM,
		"sd-esm":  quickstore.SDESM,
		"sl-esm":  quickstore.SLESM,
		"pd-redo": quickstore.PDREDO,
		"wpl":     quickstore.WPL,
	}[*scheme]
	if !ok {
		fmt.Fprintf(os.Stderr, "qsctl: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	store, err := quickstore.Dial(*addr, quickstore.Options{Scheme: sc})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()

	switch flag.Arg(0) {
	case "put":
		data := []byte(flag.Arg(1))
		var oid quickstore.OID
		err = store.Update(func(tx *quickstore.Tx) error {
			var err error
			oid, err = tx.Allocate(len(data))
			if err != nil {
				return err
			}
			return tx.Write(oid, 0, data)
		})
		if err == nil {
			fmt.Println(oid)
		}
	case "get":
		oid, perr := parseOID(flag.Arg(1))
		if perr != nil {
			err = perr
			break
		}
		err = store.View(func(tx *quickstore.Tx) error {
			data, err := tx.ReadObject(oid)
			if err != nil {
				return err
			}
			fmt.Printf("%s\n", data)
			return nil
		})
	case "bench":
		start := time.Now()
		for i := 0; i < *n; i++ {
			err = store.Update(func(tx *quickstore.Tx) error {
				oid, err := tx.Allocate(64)
				if err != nil {
					return err
				}
				return tx.Write(oid, 0, []byte(fmt.Sprintf("bench %d", i)))
			})
			if err != nil {
				break
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%d txns in %v (%.0f txn/s)\n", *n, elapsed.Round(time.Millisecond),
			float64(*n)/elapsed.Seconds())
	default:
		err = fmt.Errorf("unknown command %q", flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
		os.Exit(1)
	}
}

// faultsCmd manages the daemon's fault-injection plan over the management op.
func faultsCmd(addr string, seed int64, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: faults arm <plan> | faults disarm | faults list")
	}
	switch args[0] {
	case "list":
		for _, name := range faultinject.PlanNames() {
			fmt.Println(name)
		}
		return nil
	case "arm":
		if len(args) != 2 {
			return fmt.Errorf("usage: faults arm <plan> (one of %v)", faultinject.PlanNames())
		}
		cli, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		defer cli.Close()
		name, err := cli.Faults(true, args[1], seed)
		if err != nil {
			return err
		}
		fmt.Printf("armed plan %q with seed %d\n", name, seed)
		return nil
	case "disarm":
		cli, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		defer cli.Close()
		if _, err := cli.Faults(false, "", 0); err != nil {
			return err
		}
		fmt.Println("fault injection disarmed")
		return nil
	default:
		return fmt.Errorf("unknown faults subcommand %q", args[0])
	}
}

// statsCmd fetches and prints the daemon's extended counters.
func statsCmd(addr string, args []string) error {
	asJSON := len(args) == 1 && args[0] == "-json"
	if len(args) > 0 && !asJSON {
		return fmt.Errorf("usage: stats [-json]")
	}
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	x, err := cli.ServerStats()
	if err != nil {
		return err
	}
	if asJSON {
		out, err := json.MarshalIndent(x, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	gc := x.GroupCommit
	fmt.Printf("transactions     commits=%d aborts=%d checkpoints=%d restarts=%d\n",
		x.Commits, x.Aborts, x.Checkpoints, x.Restarts)
	fmt.Printf("log              forces=%d pages_written=%d records_applied=%d\n",
		x.LogForces, x.LogPagesWritten, x.LogRecordsApplied)
	fmt.Printf("group commit     commits=%d batches=%d flushes_avoided=%d",
		gc.Commits, gc.Batches, gc.FlushesAvoided)
	if gc.Batches > 0 {
		fmt.Printf(" mean_batch=%.2f", float64(gc.Commits)/float64(gc.Batches))
	}
	fmt.Println()
	fmt.Printf("  batch sizes    ")
	for i, n := range gc.BatchSizes {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%d", i)
		if i == len(gc.BatchSizes)-1 {
			label += "+"
		}
		fmt.Printf("[%s]=%d ", label, n)
	}
	fmt.Println()
	fmt.Printf("buffer pool      hits=%d misses=%d latch_contention=%d\n",
		x.PoolHits, x.PoolMisses, x.LatchContention)
	fmt.Printf("lock manager     waits=%d\n", x.LockWaits)
	fmt.Printf("data disk        reads=%d writes=%d\n", x.DataReads, x.DataWrites)
	if x.RedoWorkers > 0 {
		fmt.Printf("restart redo     workers=%d applied=%v\n", x.RedoWorkers, x.RedoApplied)
	}
	return nil
}

// parseOID parses the P<page>.<slot> form printed by OID.String.
func parseOID(s string) (quickstore.OID, error) {
	s = strings.TrimPrefix(s, "P")
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 {
		return quickstore.NilOID, fmt.Errorf("bad OID %q (want P<page>.<slot>)", s)
	}
	pg, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return quickstore.NilOID, err
	}
	slot, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return quickstore.NilOID, err
	}
	var oid quickstore.OID
	var b [8]byte
	// Build via the encoded form to avoid depending on internal field types.
	putOID(b[:], uint32(pg), uint16(slot))
	oid = quickstore.DecodeOID(b[:])
	return oid, nil
}

func putOID(b []byte, pg uint32, slot uint16) {
	b[0] = byte(pg)
	b[1] = byte(pg >> 8)
	b[2] = byte(pg >> 16)
	b[3] = byte(pg >> 24)
	b[4] = byte(slot)
	b[5] = byte(slot >> 8)
	b[6] = 0
	b[7] = 0
}
