// Command qsctl pokes a running quickstored server: writes and reads test
// objects, measures round-trip latency, and exercises transactions from the
// command line.
//
//	qsctl -addr localhost:7447 put "some bytes"   # prints the new OID
//	qsctl -addr localhost:7447 get P7.0
//	qsctl -addr localhost:7447 -n 100 bench
//
// It also manages fault injection on the daemon's data volume (the server
// must be running; plans are deterministic per seed, so a failure seen under
// `faults arm chaos -seed 7` reproduces under the same seed):
//
//	qsctl faults list                 # built-in plan names
//	qsctl -seed 7 faults arm chaos    # arm a plan
//	qsctl faults disarm
//
// And it reports the daemon's server-side counters (group-commit batching,
// buffer-pool and latch behaviour, restart redo utilization):
//
//	qsctl stats            # human-readable counter summary
//	qsctl stats -json      # raw JSON (wire.DaemonStats)
//
// When the daemon archives its log (-archive-dir), qsctl also drives media
// recovery (see the README walkthrough):
//
//	qsctl backup                                  # fuzzy online backup, no quiesce
//	qsctl archive-status                          # archiver lag and backup positions
//	qsctl restore -archive-dir DIR -data VOL      # offline: rebuild a destroyed volume
//	qsctl restore -archive-dir DIR -data VOL -target 123456   # point-in-time
//
// When replication is on (quickstored -repl on the primary, -replica-of on
// the standby), qsctl shows shipping/apply lag and drives failover:
//
//	qsctl repl-status                 # role, ack mode, acked/applied LSNs, lag
//	qsctl -addr standby:7447 promote  # stop following, open for writes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	quickstore "repro"
	"repro/internal/archive"
	"repro/internal/disk"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	var (
		addr   = flag.String("addr", "localhost:7447", "server address")
		scheme = flag.String("scheme", "pd-esm", "client scheme: pd-esm|sd-esm|sl-esm|pd-redo|wpl")
		n      = flag.Int("n", 100, "bench: transactions to run")
		seed   = flag.Int64("seed", 1, "faults arm: fault plan seed")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: qsctl [flags] put <data> | get <oid> | bench | stats [-json] | scrub [limit] | backup | archive-status | restore [flags] | repl-status | promote | 2pc-status [addr...] | faults arm <plan> | faults disarm | faults list")
		os.Exit(2)
	}
	if flag.Arg(0) == "faults" {
		if err := faultsCmd(*addr, *seed, flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "stats" {
		if err := statsCmd(*addr, flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "scrub" {
		if err := scrubCmd(*addr, flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "backup" || flag.Arg(0) == "archive-status" {
		if err := archiveCmd(*addr, flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "restore" {
		if err := restoreCmd(flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "2pc-status" {
		if err := twopcStatusCmd(*addr, flag.Args()[1:]); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.Arg(0) == "repl-status" || flag.Arg(0) == "promote" {
		if err := replCmd(*addr, flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
			os.Exit(1)
		}
		return
	}
	sc, ok := map[string]quickstore.Scheme{
		"pd-esm":  quickstore.PDESM,
		"sd-esm":  quickstore.SDESM,
		"sl-esm":  quickstore.SLESM,
		"pd-redo": quickstore.PDREDO,
		"wpl":     quickstore.WPL,
	}[*scheme]
	if !ok {
		fmt.Fprintf(os.Stderr, "qsctl: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	store, err := quickstore.Dial(*addr, quickstore.Options{Scheme: sc})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
		os.Exit(1)
	}
	defer store.Close()

	switch flag.Arg(0) {
	case "put":
		data := []byte(flag.Arg(1))
		var oid quickstore.OID
		err = store.Update(func(tx *quickstore.Tx) error {
			var err error
			oid, err = tx.Allocate(len(data))
			if err != nil {
				return err
			}
			return tx.Write(oid, 0, data)
		})
		if err == nil {
			fmt.Println(oid)
		}
	case "get":
		oid, perr := parseOID(flag.Arg(1))
		if perr != nil {
			err = perr
			break
		}
		err = store.View(func(tx *quickstore.Tx) error {
			data, err := tx.ReadObject(oid)
			if err != nil {
				return err
			}
			fmt.Printf("%s\n", data)
			return nil
		})
	case "bench":
		//qslint:allow determinism: interactive bench timer, printed to the operator and never replayed
		start := time.Now()
		for i := 0; i < *n; i++ {
			err = store.Update(func(tx *quickstore.Tx) error {
				oid, err := tx.Allocate(64)
				if err != nil {
					return err
				}
				return tx.Write(oid, 0, []byte(fmt.Sprintf("bench %d", i)))
			})
			if err != nil {
				break
			}
		}
		//qslint:allow determinism: interactive bench timer, printed to the operator and never replayed
		elapsed := time.Since(start)
		fmt.Printf("%d txns in %v (%.0f txn/s)\n", *n, elapsed.Round(time.Millisecond),
			float64(*n)/elapsed.Seconds())
	default:
		err = fmt.Errorf("unknown command %q", flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qsctl: %v\n", err)
		os.Exit(1)
	}
}

// faultsCmd manages the daemon's fault-injection plan over the management op.
func faultsCmd(addr string, seed int64, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: faults arm <plan> | faults disarm | faults list")
	}
	switch args[0] {
	case "list":
		for _, name := range faultinject.PlanNames() {
			fmt.Println(name)
		}
		return nil
	case "arm":
		if len(args) != 2 {
			return fmt.Errorf("usage: faults arm <plan> (one of %v)", faultinject.PlanNames())
		}
		cli, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		defer cli.Close()
		name, err := cli.Faults(true, args[1], seed)
		if err != nil {
			return err
		}
		fmt.Printf("armed plan %q with seed %d\n", name, seed)
		return nil
	case "disarm":
		cli, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		defer cli.Close()
		if _, err := cli.Faults(false, "", 0); err != nil {
			return err
		}
		fmt.Println("fault injection disarmed")
		return nil
	default:
		return fmt.Errorf("unknown faults subcommand %q", args[0])
	}
}

// statsCmd fetches and prints the daemon's extended counters.
func statsCmd(addr string, args []string) error {
	asJSON := len(args) == 1 && args[0] == "-json"
	if len(args) > 0 && !asJSON {
		return fmt.Errorf("usage: stats [-json]")
	}
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	x, err := cli.ServerStats()
	if err != nil {
		return err
	}
	if asJSON {
		out, err := json.MarshalIndent(x, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	gc := x.GroupCommit
	fmt.Printf("transactions     commits=%d aborts=%d checkpoints=%d restarts=%d\n",
		x.Commits, x.Aborts, x.Checkpoints, x.Restarts)
	fmt.Printf("log              forces=%d pages_written=%d records_applied=%d\n",
		x.LogForces, x.LogPagesWritten, x.LogRecordsApplied)
	fmt.Printf("group commit     commits=%d batches=%d flushes_avoided=%d",
		gc.Commits, gc.Batches, gc.FlushesAvoided)
	if gc.Batches > 0 {
		fmt.Printf(" mean_batch=%.2f", float64(gc.Commits)/float64(gc.Batches))
	}
	fmt.Println()
	fmt.Printf("  batch sizes    ")
	for i, n := range gc.BatchSizes {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("%d", i)
		if i == len(gc.BatchSizes)-1 {
			label += "+"
		}
		fmt.Printf("[%s]=%d ", label, n)
	}
	fmt.Println()
	fmt.Printf("buffer pool      hits=%d misses=%d latch_contention=%d\n",
		x.PoolHits, x.PoolMisses, x.LatchContention)
	fmt.Printf("lock manager     waits=%d\n", x.LockWaits)
	fmt.Printf("data disk        reads=%d writes=%d\n", x.DataReads, x.DataWrites)
	fmt.Printf("page cleaner     cleaner_pages=%d passes=%d hot_skips=%d dirty_pages=%d\n",
		x.CleanerPages, x.CleanerPasses, x.CleanerHotSkips, x.DirtyPages)
	fmt.Printf("checkpointing    redo_distance_bytes=%d ckpt_stall_ns=%d\n",
		x.RedoDistanceBytes, x.CkptStallNs)
	fmt.Printf("integrity        scanned=%d checksum_failures=%d repaired=%d unrepairable=%d\n",
		x.ScrubScanned, x.ChecksumFailures, x.PagesRepaired, x.PagesUnrepairable)
	if x.TwoPCPrepares > 0 || x.TwoPCResolutions > 0 || len(x.InDoubt) > 0 {
		fmt.Printf("two-phase commit prepares=%d presumed_aborts=%d resolutions=%d in_doubt=%d\n",
			x.TwoPCPrepares, x.TwoPCPresumedAborts, x.TwoPCResolutions, len(x.InDoubt))
	}
	if len(x.Ops) > 0 {
		// Sort the map-keyed section: identical stats must print identically
		// (scripts diff this output, and map iteration order is randomized).
		names := make([]string, 0, len(x.Ops))
		for name := range x.Ops {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("wire ops         ")
		for _, name := range names {
			fmt.Printf("%s=%d ", name, x.Ops[name])
		}
		fmt.Println()
	}
	if x.RedoWorkers > 0 {
		fmt.Printf("restart redo     workers=%d applied=%v\n", x.RedoWorkers, x.RedoApplied)
	}
	if a := x.Archive; a != nil {
		fmt.Printf("archiver         gen=%d segments=%d archived_to=%d lag=%dB (%d segments behind)\n",
			a.Generation, a.Segments, a.ArchivedUpTo, a.LagBytes, a.SegmentsBehind)
		fmt.Printf("  backups        count=%d last_backup_lsn=%d\n", a.Backups, a.LastBackupLSN)
	}
	if r := x.Repl; r != nil {
		fmt.Printf("replication      role=primary mode=%s connected=%v acked=%d stable=%d lag=%dB\n",
			r.Mode, r.Connected, r.AckedLSN, r.StableEnd, r.LagBytes)
		fmt.Printf("  shipping       fetches=%d ack_waits=%d ack_timeouts=%d\n",
			r.Fetches, r.AckWaits, r.AckTimeouts)
	}
	if s := x.Standby; s != nil {
		fmt.Printf("replication      role=standby applied=%d remote_stable=%d lag=%dB\n",
			s.AppliedLSN, s.RemoteStable, s.LagBytes)
		fmt.Printf("  applying       batches=%d records=%d reconnects=%d\n",
			s.Batches, s.Records, s.Reconnects)
	}
	return nil
}

// twopcStatusCmd prints every in-doubt transaction branch — prepared under
// two-phase commit, fate unknown until its coordinator answers — across the
// shard daemons named as arguments (default: just -addr). A branch listed
// here holds its locks; a persistently growing age means its coordinator
// shard is down and a resolution pass (shard.Router.Recover, run by any
// sharded client at startup) is overdue.
func twopcStatusCmd(addr string, args []string) error {
	addrs := args
	if len(addrs) == 0 {
		addrs = []string{addr}
	}
	total := 0
	for s, a := range addrs {
		cli, err := wire.Dial(a)
		if err != nil {
			return fmt.Errorf("shard %d (%s): %w", s, a, err)
		}
		x, err := cli.ServerStats()
		cli.Close()
		if err != nil {
			return fmt.Errorf("shard %d (%s): %w", s, a, err)
		}
		fmt.Printf("shard %d (%s)   prepares=%d presumed_aborts=%d resolutions=%d in_doubt=%d\n",
			s, a, x.TwoPCPrepares, x.TwoPCPresumedAborts, x.TwoPCResolutions, len(x.InDoubt))
		for _, idt := range x.InDoubt {
			fmt.Printf("  tid=%d coordinator=shard %d age=%v\n",
				idt.TID, idt.Coordinator, idt.Age.Round(time.Millisecond))
			total++
		}
	}
	if total == 0 {
		fmt.Println("no in-doubt transactions")
	}
	return nil
}

// replCmd serves the replication subcommands against a live daemon:
// repl-status prints shipping or apply lag depending on the daemon's role,
// and promote turns a hot standby into a writable primary (the point of the
// whole exercise — see DESIGN.md §14).
func replCmd(addr, cmd string) error {
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	switch cmd {
	case "promote":
		if err := cli.Promote(); err != nil {
			return err
		}
		fmt.Println("standby promoted: now accepting writes")
		return nil
	case "repl-status":
		x, err := cli.ServerStats()
		if err != nil {
			return err
		}
		switch {
		case x.Repl != nil:
			r := x.Repl
			fmt.Printf("role             primary (%s)\n", r.Mode)
			fmt.Printf("standby          connected=%v\n", r.Connected)
			fmt.Printf("shipped          cursor=%d acked=%d stable_end=%d\n", r.CursorLSN, r.AckedLSN, r.StableEnd)
			fmt.Printf("lag              %d bytes unacked\n", r.LagBytes)
			fmt.Printf("counters         fetches=%d ack_waits=%d ack_timeouts=%d\n",
				r.Fetches, r.AckWaits, r.AckTimeouts)
		case x.Standby != nil:
			s := x.Standby
			fmt.Printf("role             standby\n")
			fmt.Printf("applied          %d (primary stable end %d)\n", s.AppliedLSN, s.RemoteStable)
			fmt.Printf("lag              %d bytes behind the primary\n", s.LagBytes)
			fmt.Printf("counters         batches=%d records=%d reconnects=%d\n",
				s.Batches, s.Records, s.Reconnects)
		default:
			fmt.Println("replication not configured (start the primary with -repl, the standby with -replica-of)")
		}
		return nil
	}
	return fmt.Errorf("unknown repl command %q", cmd)
}

// scrubCmd asks the daemon to verify (and repair) stored pages now. With no
// argument the whole volume is scanned; with a numeric limit only the next
// batch from the daemon's scrub cursor.
func scrubCmd(addr string, args []string) error {
	limit := 0
	if len(args) == 1 {
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return fmt.Errorf("usage: scrub [limit] (limit must be a non-negative integer)")
		}
		limit = n
	} else if len(args) > 1 {
		return fmt.Errorf("usage: scrub [limit]")
	}
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	report, err := cli.Scrub(limit)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d pages: %d checksum failures, %d repaired, %d unrepairable\n",
		report.Scanned, report.Failures, report.Repaired, report.Unrepairable)
	return nil
}

// archiveCmd serves the backup and archive-status subcommands against a live
// daemon.
func archiveCmd(addr, cmd string) error {
	cli, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer cli.Close()
	switch cmd {
	case "backup":
		info, err := cli.Backup()
		if err != nil {
			return err
		}
		fmt.Printf("backup %s: %d pages, redo from %d, fuzz window [%d, %d)\n",
			info.Name, info.Pages, info.RedoStart, info.Start, info.End)
		return nil
	case "archive-status":
		st, err := cli.ArchiveStatus()
		if err != nil {
			return err
		}
		fmt.Printf("generation       %d\n", st.Generation)
		fmt.Printf("segments         %d (%d bytes archived)\n", st.Segments, st.SegmentBytes)
		fmt.Printf("archived up to   %d (stable end %d)\n", st.ArchivedUpTo, st.StableEnd)
		fmt.Printf("lag              %d bytes, %d segments behind\n", st.LagBytes, st.SegmentsBehind)
		fmt.Printf("backups          %d (last at LSN %d)\n", st.Backups, st.LastBackupLSN)
		return nil
	}
	return fmt.Errorf("unknown archive command %q", cmd)
}

// restoreCmd rebuilds a destroyed volume file from an archive directory. It
// runs offline (against the filesystem, not the daemon): media recovery is
// what happens when the server's volume is gone. The recovered pages are
// staged into <data>.tmp and renamed over <data> only after restart
// completes, so a crash mid-restore leaves a stale temp file and a cleanly
// re-runnable restore, never a half-written volume.
func restoreCmd(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	var (
		dir     = fs.String("archive-dir", "", "archive directory (required)")
		data    = fs.String("data", "", "destination volume file (required)")
		mode    = fs.String("mode", "esm", "recovery mode the server ran: esm|redo|wpl")
		target  = fs.Uint64("target", 0, "point-in-time target LSN (0 = end of archive)")
		workers = fs.Int("workers", 0, "parallel redo workers (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *data == "" {
		return fmt.Errorf("usage: restore -archive-dir DIR -data VOL [-mode esm|redo|wpl] [-target LSN] [-workers N]")
	}
	var m server.Mode
	switch *mode {
	case "esm":
		m = server.ModeESM
	case "redo":
		m = server.ModeREDO
	case "wpl":
		m = server.ModeWPL
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	blobs, err := archive.OpenDir(*dir)
	if err != nil {
		return err
	}
	tmp := *data + ".tmp"
	if err := os.Remove(tmp); err != nil && !os.IsNotExist(err) {
		return err // a stale temp volume from a crashed restore is discarded
	}
	res, err := archive.Restore(blobs, archive.RestoreOptions{
		Mode:        m,
		TargetLSN:   *target,
		RedoWorkers: *workers,
		NewStore: func() (disk.Store, error) {
			return disk.OpenFileStore(tmp)
		},
		Finish: func(st disk.Store) error {
			if err := st.Close(); err != nil {
				return err
			}
			return os.Rename(tmp, *data)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("restored %s from %s: replayed %d records in %d segments to LSN %d (backup %s)\n",
		*data, *dir, res.Records, res.Segments, res.CutLSN, res.Backup.Name)
	return nil
}

// parseOID parses the P<page>.<slot> form printed by OID.String.
func parseOID(s string) (quickstore.OID, error) {
	s = strings.TrimPrefix(s, "P")
	parts := strings.SplitN(s, ".", 2)
	if len(parts) != 2 {
		return quickstore.NilOID, fmt.Errorf("bad OID %q (want P<page>.<slot>)", s)
	}
	pg, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return quickstore.NilOID, err
	}
	slot, err := strconv.ParseUint(parts[1], 10, 16)
	if err != nil {
		return quickstore.NilOID, err
	}
	var oid quickstore.OID
	var b [8]byte
	// Build via the encoded form to avoid depending on internal field types.
	putOID(b[:], uint32(pg), uint16(slot))
	oid = quickstore.DecodeOID(b[:])
	return oid, nil
}

func putOID(b []byte, pg uint32, slot uint16) {
	b[0] = byte(pg)
	b[1] = byte(pg >> 8)
	b[2] = byte(pg >> 16)
	b[3] = byte(pg >> 24)
	b[4] = byte(slot)
	b[5] = byte(slot >> 8)
	b[6] = 0
	b[7] = 0
}
