# Developer/CI entry points. `make check` is the gate: vet, build, the full
# test suite under the race detector, and a short crash-point sweep smoke
# (50 replayed crash points per recovery scheme; see DESIGN.md §8).

GO ?= go

.PHONY: check vet build test race sweep-smoke sweep-full

check: vet build race sweep-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

sweep-smoke:
	$(GO) test ./internal/harness/ -run TestSweepCrashPoints -count=1 -sweep.budget=50

# Exhaustive: replay every enumerated crash point for all five schemes.
sweep-full:
	$(GO) test ./internal/harness/ -run TestSweepCrashPoints -count=1 -sweep.budget=-1 -v
