# Developer/CI entry points. `make check` is the gate: vet, qslint (the
# static invariant suite, DESIGN.md §11), build, the full test suite under
# the race detector, a short crash-point sweep smoke (50 replayed crash
# points per recovery scheme; see DESIGN.md §8), the concurrent-server tests
# under -race, the 2-client group-commit sweep smoke (DESIGN.md §9), the
# media-failure sweep smoke and the race-enabled archive backup/restore
# round-trip (DESIGN.md §10), the page-corruption scrub sweep plus the
# race-enabled background scrubber (DESIGN.md §12), and the fuzzy-checkpoint
# / page-cleaner surface: the cleaner racing committing sessions under
# -race, the fuzzy crash-point sweep smoke, and one pass of the checkpoint
# latency benchmark (DESIGN.md §13), and the hot-standby replication
# surface: the shipping/apply/promotion paths under -race and the failover
# sweep smoke (every scheme, record-boundary stream cuts; DESIGN.md §14),
# and the sharding surface: the 2PC router under -race and the two-shard
# crash/stall sweep smoke (every scheme; DESIGN.md §16).

GO ?= go

.PHONY: check vet lint lint-fixtures build test race sweep-smoke sweep-full race-concurrent group-sweep-smoke media-sweep-smoke race-archive scrub-sweep-smoke race-scrub race-cleaner fuzzy-sweep-smoke bench-ckpt-smoke bench-commit bench-ckpt race-repl repl-sweep-smoke bench-repl race-shard twopc-sweep-smoke bench-shard

check: vet lint lint-fixtures build race sweep-smoke race-concurrent group-sweep-smoke media-sweep-smoke race-archive scrub-sweep-smoke race-scrub race-cleaner fuzzy-sweep-smoke bench-ckpt-smoke race-repl repl-sweep-smoke race-shard twopc-sweep-smoke

vet:
	$(GO) vet ./...

# qslint: latch order (§S9), WAL layering / write-ahead order, sweep
# determinism, stable-storage error discipline, and the §15 dataflow
# protocol analyzers (force-before-ack, latch-io, goroutine-lifecycle,
# sentinel-errors) — over every package including cmd/, plus the harness's
# in-package test files (-tests). Fails on any finding the checked-in
# baseline does not cover, and on stale baseline entries; the JSON report
# is left in lint-report.json for tooling either way.
lint:
	$(GO) run ./cmd/qslint -tests -baseline lint-baseline.json -json . > lint-report.json

# The analyzer acceptance corpus: every testdata fixture's want comments,
# plus the seeded-violation tests (a planted latch inversion, an
# unforced-ack path, a latched force, a leaked goroutine, a == sentinel
# comparison — each must be caught, proving the suite cannot silently
# lose a detector).
lint-fixtures:
	$(GO) test ./internal/lint/ -count=1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

sweep-smoke:
	$(GO) test ./internal/harness/ -run TestSweepCrashPoints -count=1 -sweep.budget=50

# Exhaustive: replay every enumerated crash point for all five schemes.
sweep-full:
	$(GO) test ./internal/harness/ -run TestSweepCrashPoints -count=1 -sweep.budget=-1 -v

# The concurrency surface (group commit, sharded pool sessions, async WPL
# installer, parallel redo) under the race detector.
race-concurrent:
	$(GO) test -race ./internal/server/ -run 'TestConcurrent|TestGroupCommit|TestWPLAsync|TestParallelRedo' -count=1

# 2-client group-commit crash sweep: every record-boundary cut between group
# formation and the stable flush, one scheme, under -race.
group-sweep-smoke:
	$(GO) test -race ./internal/harness/ -run TestGroupCommitSweepSmoke -count=1

# Media-failure sweep: destroy the volume, restore from the fuzzy online
# backup plus the archived log at every archive boundary event and sampled
# point-in-time cuts, all five schemes (DESIGN.md §10).
media-sweep-smoke:
	$(GO) test ./internal/harness/ -run TestMediaSweepSmoke -count=1

# Archive round-trip (segment/backup framing, truncation gate with batches
# in flight, restore re-runnability, corruption detection) under -race.
race-archive:
	$(GO) test -race ./internal/archive/ -count=1

# Page-corruption sweep: rot/tear every page of a seeded workload below the
# checksum envelope, then demand detection, byte-identical repair (live log
# or archive), restart over a fully damaged volume, and loud typed failure
# when nothing can repair — all five schemes (DESIGN.md §12).
scrub-sweep-smoke:
	$(GO) test ./internal/harness/ -run TestScrubSweepSmoke -count=1

# The online scrubber and single-page repair under the race detector:
# paced scrubbing concurrent with committing sessions.
race-scrub:
	$(GO) test -race ./internal/server/ -run 'TestScrub|TestDemandRead|TestUnrepairable|TestBackgroundScrubber' -count=1

# The background page cleaner and fuzzy checkpoints racing committing
# sessions under the race detector, including crash+restart afterwards
# (DESIGN.md §13).
race-cleaner:
	$(GO) test -race ./internal/server/ -run 'TestCleaner|TestClean|TestMaintenanceDuringRestart' -count=1

# Fuzzy-checkpoint crash sweep: cuts inside cleaner page writes and in the
# fuzzy-checkpoint-record -> superblock window, all five schemes.
fuzzy-sweep-smoke:
	$(GO) test ./internal/harness/ -run 'TestFuzzy' -count=1 -sweep.budget=50

# One pass of the checkpoint latency benchmark as a smoke: proves both arms
# run end to end; the report goes to a scratch file, not the repo.
bench-ckpt-smoke:
	$(GO) run ./cmd/benchcommit -ckpt -out $${TMPDIR:-/tmp}/BENCH_checkpoint_smoke.json

# Multi-client commit-throughput benchmark: serialized baseline vs group
# commit, per scheme, writing BENCH_commit.json — plus the same grid over a
# checksummed volume (BENCH_commit_checksum.json) so the integrity tax of
# the per-page CRC envelope stays visible in the perf trajectory.
bench-commit:
	$(GO) run ./cmd/benchcommit -out BENCH_commit.json
	$(GO) run ./cmd/benchcommit -checksum -out BENCH_commit_checksum.json

# Commit p99 during an active checkpoint, sharp stop-the-world flush vs
# fuzzy checkpoint + background cleaner, writing BENCH_checkpoint.json
# (DESIGN.md §13).
bench-ckpt:
	$(GO) run ./cmd/benchcommit -ckpt -out BENCH_checkpoint.json

# The replication surface under the race detector: the shipper's fetch/ack
# paths, the continuously-applying standby, promotion, and the wire-level
# failover protocol (DESIGN.md §14).
race-repl:
	$(GO) test -race ./internal/repl/ -count=1
	$(GO) test -race ./internal/wire/ -run 'TestClientFailover|TestStandby|TestRepl' -count=1

# Failover sweep: cut the shipped stream at every record boundary (budget-
# sampled), promote the standby, and demand byte-equivalence with a
# single-node restart at the same cut plus exact acked-commit durability,
# all five schemes (DESIGN.md §14).
repl-sweep-smoke:
	$(GO) test ./internal/harness/ -run TestReplSweep -count=1

# Commit p50/p99 with a hot standby attached: no replication vs async vs
# semi-sync acks at 8 clients, writing BENCH_repl.json (DESIGN.md §14).
bench-repl:
	$(GO) run ./cmd/benchcommit -repl -out BENCH_repl.json

# The sharding router and cross-shard 2PC paths under the race detector
# (DESIGN.md §16).
race-shard:
	$(GO) test -race ./internal/shard/ -count=1

# Two-shard 2PC sweeps, budget-sampled: crash at globally-numbered stable
# events, and stall every Prepare/Decide/Forget message in turn; demands
# cross-shard atomicity, in-doubt lock retention and idempotent resolution
# for all five schemes (DESIGN.md §16).
twopc-sweep-smoke:
	$(GO) test ./internal/harness/ -run 'TestTwoPC' -count=1 -short

# Scale-out throughput 1..4 shards, disjoint vs 10%-cross-shard mixes,
# writing BENCH_shard.json (DESIGN.md §16).
bench-shard:
	$(GO) run ./cmd/benchcommit -shards 4 -out BENCH_shard.json
