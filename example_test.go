package quickstore_test

import (
	"fmt"

	quickstore "repro"
)

// The basic lifecycle: open an embedded store, commit an object, read it
// back after a crash.
func Example() {
	store, err := quickstore.Open(quickstore.Options{Scheme: quickstore.PDESM, LogMB: 32})
	if err != nil {
		panic(err)
	}
	defer store.Close()

	var oid quickstore.OID
	err = store.Update(func(tx *quickstore.Tx) error {
		var err error
		oid, err = tx.Allocate(32)
		if err != nil {
			return err
		}
		return tx.Write(oid, 0, []byte("durable"))
	})
	if err != nil {
		panic(err)
	}

	if err := store.Crash(); err != nil {
		panic(err)
	}

	store.View(func(tx *quickstore.Tx) error {
		data := make([]byte, 7)
		tx.Read(oid, 0, data)
		fmt.Printf("%s\n", data)
		return nil
	})
	// Output: durable
}

// Transactions roll back automatically when the update function errors.
func ExampleStore_Update() {
	store, _ := quickstore.Open(quickstore.Options{LogMB: 32})
	defer store.Close()

	var oid quickstore.OID
	store.Update(func(tx *quickstore.Tx) error {
		oid, _ = tx.Allocate(8)
		return tx.Write(oid, 0, []byte("original"))
	})
	store.Update(func(tx *quickstore.Tx) error {
		tx.Write(oid, 0, []byte("mistake!"))
		return fmt.Errorf("changed my mind")
	})
	store.View(func(tx *quickstore.Tx) error {
		data, _ := tx.ReadObject(oid)
		fmt.Printf("%s\n", data)
		return nil
	})
	// Output: original
}

// Objects reference each other with OIDs embedded in their data.
func ExampleEncodeOID() {
	store, _ := quickstore.Open(quickstore.Options{LogMB: 32})
	defer store.Close()

	store.Update(func(tx *quickstore.Tx) error {
		target, _ := tx.Allocate(5)
		tx.Write(target, 0, []byte("hello"))
		holder, _ := tx.Allocate(quickstore.OIDSize)
		ref := make([]byte, quickstore.OIDSize)
		quickstore.EncodeOID(ref, target)
		tx.Write(holder, 0, ref)

		// Follow the reference.
		stored, _ := tx.ReadObject(holder)
		data, _ := tx.ReadObject(quickstore.DecodeOID(stored))
		fmt.Printf("%s\n", data)
		return nil
	})
	// Output: hello
}
